#include "verify/verifier.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>

#include "stm/channel_table.hpp"

namespace ss::verify {

using graph::OpGraph;
using sched::IterationSchedule;
using sched::PipelinedSchedule;
using sched::ScheduleEntry;

namespace {

// Floor/ceil division for signed ticks with positive divisors (the hazard
// window arithmetic below produces negative numerators).
Tick FloorDiv(Tick a, Tick b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
Tick CeilDiv(Tick a, Tick b) { return FloorDiv(a + b - 1, b); }

bool ProcInRange(const ScheduleEntry& e, int procs) {
  return e.proc.valid() && e.proc.value() < procs;
}

/// Smallest iteration distance d >= 1 at which an op on `from` lands on
/// `target` under the rotation, or -1 when no distance aligns them. The
/// shift pattern cycles with period procs/gcd(rotation, procs), so probing
/// d = 1..procs is exhaustive.
std::int64_t FirstAlignedDistance(int from, int target, int rotation,
                                  int procs) {
  std::int64_t p = from;
  for (int d = 1; d <= procs; ++d) {
    p = (p + rotation) % procs;
    if (p == target) return d;
  }
  return -1;
}

/// Does replaying the iteration every `ii` ticks leave some instance of a
/// later iteration starting before a same-processor instance of an earlier
/// one has finished? This is the (one-sided) conflict criterion the whole
/// pipeline layer schedules by; it is implied by any physical overlap, and
/// it is monotone: once an interval is conflict-free, every larger one is.
bool ConflictAt(const std::vector<ScheduleEntry>& entries, int procs,
                int rotation, Tick ii) {
  for (const ScheduleEntry& a : entries) {    // instance of iteration k
    if (!ProcInRange(a, procs)) continue;
    for (const ScheduleEntry& b : entries) {  // instance of iteration k+d
      if (!ProcInRange(b, procs)) continue;
      const Tick diff = a.end() - b.start;
      if (diff <= 0) continue;  // b starts after a ends even at distance 0
      const std::int64_t d = FirstAlignedDistance(
          b.proc.value(), a.proc.value(), rotation, procs);
      // Larger aligned distances only push b further right, so the first
      // one is the only candidate.
      if (d > 0 && static_cast<Tick>(d) * ii < diff) return true;
    }
  }
  return false;
}

/// First physical cross-iteration processor overlap, if any. For every
/// ordered entry pair (a at iteration k, b at iteration k+d) the distances
/// at which their busy intervals can intersect form a window of width
/// ~(dur_a + dur_b)/ii; enumerating that window for every pair covers every
/// inter-iteration distance exactly once — the full hazard window, not a
/// sampled horizon.
std::optional<Finding> FirstCollision(
    const std::vector<ScheduleEntry>& entries, int procs, int rotation,
    Tick ii) {
  if (procs <= 0 || ii <= 0 || rotation < 0 || rotation >= procs) {
    return std::nullopt;  // shape errors are reported separately
  }
  for (const ScheduleEntry& a : entries) {
    if (!ProcInRange(a, procs) || a.duration <= 0) continue;
    for (const ScheduleEntry& b : entries) {
      if (!ProcInRange(b, procs) || b.duration <= 0) continue;
      // Overlap at distance d needs  b.start + d*ii < a.end  and
      // a.start < b.end + d*ii.
      Tick dlo = FloorDiv(a.start - b.end(), ii) + 1;
      if (dlo < 1) dlo = 1;
      const Tick dhi = CeilDiv(a.end() - b.start, ii) - 1;
      for (Tick d = dlo; d <= dhi; ++d) {
        if ((b.proc.value() + d * rotation) % procs != a.proc.value()) {
          continue;
        }
        Finding f;
        f.severity = Severity::kError;
        f.check = Check::kPipelineCollision;
        f.op = b.op;
        f.proc = a.proc;
        f.tick = std::max(a.start, b.start + d * ii);
        f.message = "op " + std::to_string(b.op) + " of iteration k+" +
                    std::to_string(d) + " overlaps op " +
                    std::to_string(a.op) +
                    " of iteration k on the same processor (II " +
                    FormatTick(ii) + ", rotation " +
                    std::to_string(rotation) + ")";
        return f;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

Tick ScheduleVerifier::MinConflictFreeInterval(const IterationSchedule& iter,
                                               int procs, int rotation) {
  const Tick latency = iter.Latency();
  if (iter.entries().empty() || latency <= 0) return 1;
  Tick lo = 1;
  Tick hi = latency;  // at ii = latency, d*ii >= latency >= any diff
  while (lo < hi) {
    const Tick mid = lo + (hi - lo) / 2;
    if (ConflictAt(iter.entries(), procs, rotation, mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// Intra-iteration processor-exclusivity scan shared by the spec-full and
/// structural passes. `procs` bounds which entries are considered (others
/// are reported by the range checks). Zero-duration entries occupy no
/// processor time — solvers legitimately co-locate zero-cost split/join ops
/// with real work — so only positive-length intervals contend.
void CheckIntraOverlap(const std::vector<ScheduleEntry>& entries, int procs,
                       VerifyReport* report) {
  std::vector<const ScheduleEntry*> sorted;
  sorted.reserve(entries.size());
  for (const ScheduleEntry& e : entries) {
    if (e.duration > 0 && ProcInRange(e, procs)) sorted.push_back(&e);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const ScheduleEntry* a, const ScheduleEntry* b) {
              if (a->proc != b->proc) return a->proc < b->proc;
              return a->start < b->start;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const ScheduleEntry& prev = *sorted[i - 1];
    const ScheduleEntry& cur = *sorted[i];
    if (cur.proc == prev.proc && cur.start < prev.end()) {
      report->AddError(Check::kOverlap,
                       "op " + std::to_string(cur.op) + " overlaps op " +
                           std::to_string(prev.op) + " within the iteration",
                       cur.op, cur.proc, cur.start);
    }
  }
}

}  // namespace

std::unordered_map<std::string, std::size_t> ChannelCapacities(
    const stm::ChannelTable& table) {
  std::unordered_map<std::string, std::size_t> out;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const stm::Channel* ch =
        table.Get(ChannelId(static_cast<ChannelId::underlying_type>(i)));
    if (ch != nullptr && ch->capacity() > 0) {
      out[ch->name()] = ch->capacity();
    }
  }
  return out;
}

ScheduleVerifier::ScheduleVerifier(const graph::ProblemSpec& spec,
                                   RegimeId regime, VerifyOptions options)
    : spec_(&spec),
      plan_(spec.graph),
      regime_(regime),
      options_(std::move(options)) {}

std::optional<OpGraph> ScheduleVerifier::ExpandChecked(
    const IterationSchedule& iter, VerifyReport* report) const {
  if (!regime_.valid() || regime_.index() >= spec_->regime_count) {
    report->AddError(Check::kVariants,
                     "regime " + std::to_string(regime_.value()) +
                         " outside the problem's " +
                         std::to_string(spec_->regime_count) + " regime(s)");
    return std::nullopt;
  }
  const std::vector<VariantId>& variants = iter.variants();
  const std::size_t tasks = spec_->graph.task_count();
  if (variants.size() != tasks) {
    report->AddError(Check::kVariants,
                     "variant vector has " +
                         std::to_string(variants.size()) + " entries for " +
                         std::to_string(tasks) + " tasks");
    return std::nullopt;
  }
  bool usable = true;
  for (std::size_t t = 0; t < tasks; ++t) {
    const TaskId task(static_cast<TaskId::underlying_type>(t));
    if (!spec_->costs.Has(regime_, task)) {
      report->AddError(Check::kVariants,
                       "task '" + spec_->graph.task(task).name +
                           "' has no cost entry in regime " +
                           std::to_string(regime_.value()));
      usable = false;
      continue;
    }
    const VariantId v = variants[t];
    const std::size_t count =
        spec_->costs.Get(regime_, task).variant_count();
    if (!v.valid() || v.index() >= count) {
      report->AddError(Check::kVariants,
                       "task '" + spec_->graph.task(task).name +
                           "' selects variant " + std::to_string(v.value()) +
                           " of " + std::to_string(count));
      usable = false;
    }
  }
  if (!usable) return std::nullopt;
  return OpGraph::Expand(plan_, spec_->costs, regime_, variants);
}

void ScheduleVerifier::CheckIteration(const IterationSchedule& iter,
                                      const OpGraph& og,
                                      VerifyReport* report) const {
  const std::vector<ScheduleEntry>& entries = iter.entries();
  const std::size_t n = og.op_count();
  const int machine_procs = spec_->machine.total_procs();

  if (entries.size() != n) {
    report->AddError(Check::kCoverage,
                     "schedule has " + std::to_string(entries.size()) +
                         " entries for " + std::to_string(n) + " ops");
  }
  std::vector<int> seen(n, 0);
  std::vector<const ScheduleEntry*> by_op(n, nullptr);
  for (const ScheduleEntry& e : entries) {
    if (e.op < 0 || static_cast<std::size_t>(e.op) >= n) {
      report->AddError(Check::kCoverage,
                       "entry references op " + std::to_string(e.op) +
                           " outside the op graph",
                       e.op, e.proc, e.start);
      continue;
    }
    const auto op_index = static_cast<std::size_t>(e.op);
    if (++seen[op_index] > 1) {
      report->AddError(Check::kCoverage,
                       "op '" + og.op(e.op).label + "' scheduled " +
                           std::to_string(seen[op_index]) + " times",
                       e.op);
    } else {
      by_op[op_index] = &e;
    }
    if (!e.proc.valid() || e.proc.value() >= machine_procs) {
      report->AddError(Check::kProcRange,
                       "op '" + og.op(e.op).label + "' placed on P" +
                           std::to_string(e.proc.value()) +
                           " of a machine with " +
                           std::to_string(machine_procs) + " processors",
                       e.op, ProcId::Invalid(), e.start);
    }
    if (e.duration != og.op(e.op).cost) {
      report->AddError(Check::kDuration,
                       "op '" + og.op(e.op).label + "' has duration " +
                           FormatTick(e.duration) + " but costs " +
                           FormatTick(og.op(e.op).cost) +
                           " under the chosen variant",
                       e.op, e.proc, e.start);
    }
    if (e.start < 0) {
      report->AddError(Check::kStartTime,
                       "op '" + og.op(e.op).label +
                           "' starts at a negative time",
                       e.op, e.proc, e.start);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (seen[i] == 0) {
      report->AddError(Check::kCoverage,
                       "op '" + og.op(static_cast<int>(i)).label +
                           "' is never scheduled",
                       static_cast<int>(i));
    }
  }

  CheckIntraOverlap(entries, machine_procs, report);

  // Precedence with communication charged per the problem's comm model.
  for (const graph::OpEdge& edge : og.edges()) {
    const ScheduleEntry* from = by_op[static_cast<std::size_t>(edge.from)];
    const ScheduleEntry* to = by_op[static_cast<std::size_t>(edge.to)];
    if (from == nullptr || to == nullptr) continue;  // coverage errored
    if (!ProcInRange(*from, machine_procs) ||
        !ProcInRange(*to, machine_procs)) {
      continue;  // proc-range errored; SameNode needs valid processors
    }
    Tick ready = from->end();
    if (from->proc != to->proc) {
      ready += spec_->comm.Cost(
          edge.bytes, spec_->machine.SameNode(from->proc, to->proc));
    }
    if (to->start < ready) {
      report->AddError(
          Check::kPrecedence,
          "op '" + og.op(edge.to).label + "' starts at " +
              FormatTick(to->start) + " but its input from '" +
              og.op(edge.from).label + "' is ready at " + FormatTick(ready) +
              (from->proc != to->proc ? " (communication charged)" : ""),
          edge.to, to->proc, to->start);
    }
  }

  Tick makespan = 0;
  for (const ScheduleEntry& e : entries) {
    makespan = std::max(makespan, e.end());
  }
  if (makespan != iter.Latency()) {
    report->AddError(Check::kMakespan,
                     "recomputed makespan " + FormatTick(makespan) +
                         " != reported latency " + FormatTick(iter.Latency()),
                     -1, ProcId::Invalid(), makespan);
  }
}

void ScheduleVerifier::CheckLowerBounds(const IterationSchedule& iter,
                                        const OpGraph& og,
                                        VerifyReport* report) const {
  // A latency below a lower bound is impossible for any legal schedule:
  // even a schedule with precedence or overlap defects cannot legitimately
  // beat the critical path, so the bounds stay on for those and act as a
  // redundant corruption signal. They are only meaningless when ops are
  // missing or durations don't match the cost model.
  if (report->Has(Check::kCoverage) || report->Has(Check::kDuration)) {
    return;
  }
  const std::size_t n = og.op_count();

  // Communication-free critical path, recomputed with our own Kahn pass.
  std::vector<Tick> longest(n, 0);  // longest cost-chain ending before op i
  std::vector<int> indegree(n, 0);
  std::deque<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = static_cast<int>(og.preds(static_cast<int>(i)).size());
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  Tick critical_path = 0;
  Tick total_work = 0;
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop_front();
    const Tick finish = longest[static_cast<std::size_t>(u)] + og.op(u).cost;
    critical_path = std::max(critical_path, finish);
    total_work += og.op(u).cost;
    for (int v : og.succs(u)) {
      auto& in = longest[static_cast<std::size_t>(v)];
      in = std::max(in, finish);
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }

  if (iter.Latency() < critical_path) {
    report->AddError(Check::kLowerBound,
                     "latency " + FormatTick(iter.Latency()) +
                         " beats the critical-path lower bound " +
                         FormatTick(critical_path) +
                         " — impossible, the artifact is corrupt");
  }
  const int procs = spec_->machine.total_procs();
  const Tick work_bound = (total_work + procs - 1) / procs;
  if (iter.Latency() < work_bound) {
    report->AddError(Check::kLowerBound,
                     "latency " + FormatTick(iter.Latency()) +
                         " beats the work/processor lower bound " +
                         FormatTick(work_bound) +
                         " — impossible, the artifact is corrupt");
  }
}

VerifyReport ScheduleVerifier::VerifyIteration(
    const IterationSchedule& iter) const {
  VerifyReport report;
  if (auto og = ExpandChecked(iter, &report)) {
    CheckIteration(iter, *og, &report);
    CheckLowerBounds(iter, *og, &report);
  }
  return report;
}

void ScheduleVerifier::CheckPipeline(const PipelinedSchedule& s,
                                     VerifyReport* report) const {
  if (s.procs <= 0) {
    report->AddError(Check::kPipelineShape,
                     "pipeline has a non-positive processor modulus " +
                         std::to_string(s.procs));
    return;
  }
  bool shape_ok = true;
  if (s.procs > spec_->machine.total_procs()) {
    report->AddError(Check::kPipelineShape,
                     "pipeline rotates over " + std::to_string(s.procs) +
                         " processors but the machine has " +
                         std::to_string(spec_->machine.total_procs()));
    shape_ok = false;
  }
  if (s.rotation < 0 || s.rotation >= s.procs) {
    report->AddError(Check::kPipelineShape,
                     "rotation " + std::to_string(s.rotation) +
                         " outside [0, " + std::to_string(s.procs) + ")");
    shape_ok = false;
  }
  if (s.initiation_interval < 1) {
    report->AddError(Check::kPipelineShape,
                     "initiation interval " +
                         FormatTick(s.initiation_interval) + " below 1");
    shape_ok = false;
  }
  for (const ScheduleEntry& e : s.iteration.entries()) {
    if (e.proc.valid() && e.proc.value() >= s.procs) {
      report->AddError(Check::kProcRange,
                       "op " + std::to_string(e.op) + " on P" +
                           std::to_string(e.proc.value()) +
                           " outside the rotation modulus " +
                           std::to_string(s.procs),
                       e.op, ProcId::Invalid(), e.start);
      shape_ok = false;
    }
  }
  if (!shape_ok || s.iteration.entries().empty()) return;

  if (auto collision = FirstCollision(s.iteration.entries(), s.procs,
                                      s.rotation, s.initiation_interval)) {
    report->Add(std::move(*collision));
  }
  const Tick min_ii =
      MinConflictFreeInterval(s.iteration, s.procs, s.rotation);
  if (s.initiation_interval < min_ii) {
    report->AddError(Check::kPipelineCollision,
                     "initiation interval " +
                         FormatTick(s.initiation_interval) +
                         " is below the minimal conflict-free interval " +
                         FormatTick(min_ii) + " for rotation " +
                         std::to_string(s.rotation) +
                         ": a later iteration starts before an earlier one "
                         "releases the processor");
  } else if (options_.check_ii_minimal && s.initiation_interval > min_ii) {
    report->AddWarning(Check::kPipelineSlack,
                       "initiation interval " +
                           FormatTick(s.initiation_interval) +
                           " is not minimal for rotation " +
                           std::to_string(s.rotation) + ": " +
                           FormatTick(min_ii) + " is already conflict-free");
  }
}

std::vector<std::size_t> ScheduleVerifier::CheckChannels(
    const PipelinedSchedule& s, const OpGraph& og,
    VerifyReport* report) const {
  const graph::TaskGraph& g = spec_->graph;
  std::vector<std::size_t> items(g.channel_count(), 0);

  std::vector<const ScheduleEntry*> by_op(og.op_count(), nullptr);
  for (const ScheduleEntry& e : s.iteration.entries()) {
    if (e.op < 0 || static_cast<std::size_t>(e.op) >= og.op_count()) {
      return {};  // coverage already errored; no reliable exit ops
    }
    by_op[static_cast<std::size_t>(e.op)] = &e;
  }
  const Tick ii = std::max<Tick>(1, s.initiation_interval);

  for (std::size_t c = 0; c < g.channel_count(); ++c) {
    const ChannelId cid(static_cast<ChannelId::underlying_type>(c));
    const TaskId producer = g.producer(cid);
    const auto& consumers = g.consumers(cid);
    if (!producer.valid() || consumers.empty()) continue;  // graph output

    const ScheduleEntry* put = by_op[static_cast<std::size_t>(
        og.TaskExit(producer))];
    if (put == nullptr) return {};
    Tick released = put->end();
    bool complete = true;
    for (TaskId consumer : consumers) {
      const ScheduleEntry* done = by_op[static_cast<std::size_t>(
          og.TaskExit(consumer))];
      if (done == nullptr) {
        complete = false;
        break;
      }
      released = std::max(released, done->end());
    }
    if (!complete) return {};
    const Tick lifetime = released - put->end();
    items[c] = static_cast<std::size_t>(lifetime / ii) + 1;

    std::size_t capacity = options_.uniform_channel_capacity;
    const std::string& name = g.channel(cid).name;
    if (auto it = options_.channel_capacity.find(name);
        it != options_.channel_capacity.end()) {
      capacity = it->second;
    }
    if (capacity > 0 && items[c] > capacity) {
      report->AddError(
          Check::kChannelCapacity,
          "steady state keeps " + std::to_string(items[c]) +
              " items live in channel '" + name + "' but its capacity is " +
              std::to_string(capacity) +
              " — the producer would block (buffer-deadlock risk)");
    }
  }
  return items;
}

VerifyReport ScheduleVerifier::Verify(const PipelinedSchedule& s) const {
  VerifyReport report;
  std::optional<OpGraph> og = ExpandChecked(s.iteration, &report);
  if (og) {
    CheckIteration(s.iteration, *og, &report);
    CheckLowerBounds(s.iteration, *og, &report);
  }
  CheckPipeline(s, &report);
  if (og && report.ok()) {
    CheckChannels(s, *og, &report);
  }
  return report;
}

VerifyReport ScheduleVerifier::VerifyArtifact(
    const PipelinedSchedule& schedule, Tick reported_min_latency,
    const sched::OccupancyReport* reported_occupancy) const {
  VerifyReport report = Verify(schedule);
  // Cached artifacts are latency-mode solves, for which the served schedule
  // attains the reported minimum exactly.
  if (reported_min_latency != schedule.iteration.Latency()) {
    report.AddError(Check::kArtifact,
                    "artifact reports min latency " +
                        FormatTick(reported_min_latency) +
                        " but ships a schedule with latency " +
                        FormatTick(schedule.iteration.Latency()));
  }
  if (reported_occupancy != nullptr && report.ok()) {
    VerifyReport scratch;  // capacity findings already raised by Verify()
    std::optional<OpGraph> og = ExpandChecked(schedule.iteration, &scratch);
    const std::vector<std::size_t> items =
        og ? CheckChannels(schedule, *og, &scratch)
           : std::vector<std::size_t>{};
    if (reported_occupancy->channels.size() !=
        spec_->graph.channel_count()) {
      report.AddError(Check::kArtifact,
                      "artifact stores occupancy for " +
                          std::to_string(reported_occupancy->channels.size()) +
                          " channels; the problem has " +
                          std::to_string(spec_->graph.channel_count()));
    } else if (!items.empty()) {
      std::size_t total = 0;
      std::size_t required = 0;
      for (const sched::ChannelOccupancy& occ :
           reported_occupancy->channels) {
        if (!occ.channel.valid() || occ.channel.index() >= items.size()) {
          report.AddError(Check::kArtifact,
                          "stored occupancy names unknown channel " +
                              std::to_string(occ.channel.value()));
          continue;
        }
        const std::size_t recomputed = items[occ.channel.index()];
        if (occ.max_items != recomputed) {
          report.AddError(Check::kArtifact,
                          "stored occupancy for channel '" + occ.name +
                              "' claims " + std::to_string(occ.max_items) +
                              " live items; recomputed " +
                              std::to_string(recomputed));
        }
        total += occ.max_items;
        required = std::max(required, occ.max_items);
      }
      if (reported_occupancy->total_items != total ||
          reported_occupancy->required_capacity != required) {
        report.AddError(Check::kArtifact,
                        "stored occupancy totals are inconsistent with "
                        "their per-channel bounds");
      }
    }
  }
  return report;
}

VerifyReport ScheduleVerifier::VerifyStructure(const PipelinedSchedule& s) {
  VerifyReport report;
  if (s.procs <= 0) {
    report.AddError(Check::kPipelineShape,
                    "pipeline has a non-positive processor modulus " +
                        std::to_string(s.procs));
    return report;
  }
  bool shape_ok = true;
  if (s.rotation < 0 || s.rotation >= s.procs) {
    report.AddError(Check::kPipelineShape,
                    "rotation " + std::to_string(s.rotation) +
                        " outside [0, " + std::to_string(s.procs) + ")");
    shape_ok = false;
  }
  if (s.initiation_interval < 1) {
    report.AddError(Check::kPipelineShape,
                    "initiation interval " +
                        FormatTick(s.initiation_interval) + " below 1");
    shape_ok = false;
  }

  const std::vector<ScheduleEntry>& entries = s.iteration.entries();
  std::unordered_map<int, int> seen;
  Tick makespan = 0;
  for (const ScheduleEntry& e : entries) {
    if (e.op < 0) {
      report.AddError(Check::kCoverage,
                      "entry references negative op id " +
                          std::to_string(e.op),
                      e.op, e.proc, e.start);
    } else if (++seen[e.op] > 1) {
      report.AddError(Check::kCoverage,
                      "op " + std::to_string(e.op) + " scheduled " +
                          std::to_string(seen[e.op]) + " times",
                      e.op);
    }
    if (!e.proc.valid() || e.proc.value() >= s.procs) {
      report.AddError(Check::kProcRange,
                      "op " + std::to_string(e.op) + " on P" +
                          std::to_string(e.proc.value()) +
                          " outside the rotation modulus " +
                          std::to_string(s.procs),
                      e.op, ProcId::Invalid(), e.start);
      shape_ok = false;
    }
    if (e.start < 0) {
      report.AddError(Check::kStartTime,
                      "op " + std::to_string(e.op) +
                          " starts at a negative time",
                      e.op, e.proc, e.start);
    }
    if (e.duration < 0) {
      report.AddError(Check::kDuration,
                      "op " + std::to_string(e.op) +
                          " has a negative duration",
                      e.op, e.proc, e.start);
    }
    makespan = std::max(makespan, e.end());
  }
  if (makespan != s.iteration.Latency()) {
    report.AddError(Check::kMakespan,
                    "recomputed makespan " + FormatTick(makespan) +
                        " != reported latency " +
                        FormatTick(s.iteration.Latency()));
  }

  CheckIntraOverlap(entries, s.procs, &report);
  if (shape_ok) {
    if (auto collision = FirstCollision(entries, s.procs, s.rotation,
                                        s.initiation_interval)) {
      report.Add(std::move(*collision));
    }
  }
  return report;
}

bool ScheduleVerifier::HasCollision(const IterationSchedule& iter, int procs,
                                    int rotation, Tick ii) {
  return FirstCollision(iter.entries(), procs, rotation, ii).has_value();
}

}  // namespace ss::verify
