// Independent static schedule verifier.
//
// The branch-and-bound solver, the pipeline composer and the schedule cache
// all assert properties of the schedules they produce; this module
// re-derives and cross-checks those properties from the problem spec alone,
// sharing none of the producing code's search state (docs/verify.md):
//
//   1. single-iteration legality — op coverage, processor exclusivity,
//      precedence with communication charged per CommModel/MachineConfig,
//      durations matching the chosen data-parallel variants, recomputed
//      makespan == reported Latency();
//   2. pipeline legality — no two iterations of the (II, rotation) replay
//      ever collide on a processor, proven over the full hazard window
//      (every inter-iteration distance d with d*II < latency — beyond it no
//      overlap is geometrically possible — so the check is exhaustive, not
//      sampled), and II is minimal (II-1 must produce a collision);
//   3. STM feasibility — the pipelined in-flight item count per channel,
//      bounded against configured channel capacities (buffer-deadlock risk);
//   4. optimality spot-check — the schedule's latency must not beat the
//      communication-free critical path or the work/processor bound;
//      beating a lower bound is impossible and means the artifact is
//      corrupt.
//
// Verification never aborts on malformed input: every defect becomes a
// Finding (src/verify/finding.hpp) so corrupt cache entries are reported,
// not crashed on.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "graph/graph_io.hpp"
#include "graph/op_graph.hpp"
#include "sched/occupancy.hpp"
#include "sched/schedule.hpp"
#include "verify/finding.hpp"

namespace ss::stm {
class ChannelTable;
}  // namespace ss::stm

namespace ss::verify {

struct VerifyOptions {
  /// Emit a kPipelineSlack warning when II-1 would also be collision-free
  /// (the reported initiation interval is not minimal for its rotation).
  bool check_ii_minimal = true;
  /// Uniform per-channel in-flight bound (0 = unbounded): a schedule whose
  /// steady state keeps more items live on any channel fails STM
  /// feasibility.
  std::size_t uniform_channel_capacity = 0;
  /// Per-channel bounds by channel name; overrides the uniform bound.
  /// 0 = unbounded.
  std::unordered_map<std::string, std::size_t> channel_capacity;
};

/// Capacity bounds of every bounded channel in `table`, keyed by name —
/// assign to VerifyOptions::channel_capacity to verify a schedule against a
/// live STM configuration.
std::unordered_map<std::string, std::size_t> ChannelCapacities(
    const stm::ChannelTable& table);

class ScheduleVerifier {
 public:
  /// `spec` must outlive the verifier. The (variant-independent) expansion
  /// plan is built once, so one verifier can cheaply check many artifacts
  /// of the same problem.
  ScheduleVerifier(const graph::ProblemSpec& spec, RegimeId regime,
                   VerifyOptions options = {});

  /// Checks 1 and 4 for a bare iteration schedule.
  VerifyReport VerifyIteration(const sched::IterationSchedule& iter) const;

  /// All checks for a pipelined schedule.
  VerifyReport Verify(const sched::PipelinedSchedule& schedule) const;

  /// Verify() plus cross-checks of the stored artifact metadata: the
  /// reported minimal latency must equal the schedule's recomputed latency
  /// (and respect the lower bounds), and a stored occupancy report, when
  /// given, must match the independently recomputed per-channel bounds.
  VerifyReport VerifyArtifact(
      const sched::PipelinedSchedule& schedule, Tick reported_min_latency,
      const sched::OccupancyReport* reported_occupancy = nullptr) const;

  /// Spec-free structural legality of a pipelined schedule: sane
  /// (II, rotation, procs), unique non-negative ops, processors within the
  /// rotation modulus, no intra-iteration overlap, no cross-iteration
  /// collision. This is what snapshot loading runs before a problem spec is
  /// available.
  static VerifyReport VerifyStructure(const sched::PipelinedSchedule& s);

  /// True when replaying `iter` every `ii` ticks rotated by `rotation`
  /// (mod `procs`) makes two iterations contend for a processor. Exhaustive
  /// over the hazard window. Entries with processors outside [0, procs) are
  /// ignored (they are reported by the range checks instead).
  static bool HasCollision(const sched::IterationSchedule& iter, int procs,
                           int rotation, Tick ii);

  /// Smallest initiation interval at which no instance of a later iteration
  /// starts before a same-processor instance of an earlier iteration ends —
  /// found by binary search over a monotone conflict predicate, an
  /// independent derivation of PipelineComposer::MinInitiationInterval.
  static Tick MinConflictFreeInterval(const sched::IterationSchedule& iter,
                                      int procs, int rotation);

 private:
  /// Validates the variant vector against the cost model and expands the op
  /// graph from the shared plan; on failure reports kVariants and returns
  /// nullopt (graph-dependent checks are skipped).
  std::optional<graph::OpGraph> ExpandChecked(
      const sched::IterationSchedule& iter, VerifyReport* report) const;

  void CheckIteration(const sched::IterationSchedule& iter,
                      const graph::OpGraph& og, VerifyReport* report) const;
  void CheckLowerBounds(const sched::IterationSchedule& iter,
                        const graph::OpGraph& og, VerifyReport* report) const;
  void CheckPipeline(const sched::PipelinedSchedule& s,
                     VerifyReport* report) const;

  /// Independently recomputed per-channel steady-state in-flight items
  /// (0 for channels without consumers), enforcing capacity bounds as it
  /// goes. Empty when the exit ops are not uniquely schedulable.
  std::vector<std::size_t> CheckChannels(const sched::PipelinedSchedule& s,
                                         const graph::OpGraph& og,
                                         VerifyReport* report) const;

  const graph::ProblemSpec* spec_;
  graph::ExpandPlan plan_;
  RegimeId regime_;
  VerifyOptions options_;
};

}  // namespace ss::verify
