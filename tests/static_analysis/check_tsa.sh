#!/bin/sh
# Compiles one snippet with Clang Thread Safety Analysis promoted to an
# error and checks the outcome against an expectation:
#
#   pass — the snippet must compile cleanly (guards against the macros
#          rotting into something that rejects correct code);
#   fail — the snippet must be rejected, and specifically by a
#          thread-safety diagnostic (an unrelated compile error would mean
#          the snippet is broken, not that the analysis works).
#
# Exits 77 — the ctest SKIP_RETURN_CODE — when the compiler is not clang:
# the annotations compile to nothing elsewhere, so there is nothing to
# check and the test must not report a false pass.
#
# Usage: check_tsa.sh <c++-compiler> <src-include-dir> <snippet.cpp> <pass|fail>
set -u

cxx="$1"
include_dir="$2"
snippet="$3"
expect="$4"

if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
  echo "SKIP: '$cxx' is not clang; thread safety analysis is unavailable"
  exit 77
fi

out=$("$cxx" -std=c++20 -fsyntax-only -I"$include_dir" \
      -Wthread-safety -Wthread-safety-beta -Werror "$snippet" 2>&1)
status=$?

case "$expect" in
  pass)
    if [ "$status" -ne 0 ]; then
      echo "expected a clean compile of $snippet, got:"
      echo "$out"
      exit 1
    fi
    ;;
  fail)
    if [ "$status" -eq 0 ]; then
      echo "expected a thread-safety error, but $snippet compiled cleanly"
      exit 1
    fi
    if ! echo "$out" | grep -q "thread-safety"; then
      echo "$snippet failed to compile, but not with a thread-safety" \
           "diagnostic:"
      echo "$out"
      exit 1
    fi
    ;;
  *)
    echo "unknown expectation '$expect' (want pass|fail)"
    exit 2
    ;;
esac
exit 0
