// Negative compile test: acquiring a mutex already held on the same path is
// a guaranteed self-deadlock with std::mutex and must be rejected by
// -Wthread-safety.
#include "core/sync.hpp"

namespace {

class Account {
 public:
  void Deposit() {
    mu_.Lock();
    // BUG under test: second acquisition of a capability already held.
    mu_.Lock();
    ++balance_;
    mu_.Unlock();
    mu_.Unlock();
  }

 private:
  ss::Mutex mu_;
  int balance_ SS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit();
  return 0;
}
