// Negative compile test: calling an SS_REQUIRES(mu) helper without holding
// the mutex must be rejected by -Wthread-safety. If this file ever compiles
// under clang, the Locked-helper convention has no teeth.
#include "core/sync.hpp"

namespace {

class Table {
 public:
  // BUG under test: calls the Locked helper with mu_ not held.
  void Rebalance() { CompactLocked(); }

 private:
  void CompactLocked() SS_REQUIRES(mu_) { ++entries_; }

  ss::Mutex mu_;
  int entries_ SS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Rebalance();
  return 0;
}
