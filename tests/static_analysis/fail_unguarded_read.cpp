// Negative compile test: reading a SS_GUARDED_BY field without holding its
// mutex must be rejected by -Wthread-safety. If this file ever compiles
// under clang, the guarded-field enforcement is broken.
#include "core/sync.hpp"

namespace {

class Counter {
 public:
  void Increment() {
    ss::MutexLock lock(mu_);
    ++value_;
  }

  // BUG under test: reads value_ with mu_ not held.
  int Peek() const { return value_; }

 private:
  mutable ss::Mutex mu_;
  int value_ SS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Peek();
}
