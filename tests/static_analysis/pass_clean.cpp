// Positive compile test: idiomatic use of every primitive in
// src/core/sync.hpp must compile warning-free under -Wthread-safety
// -Wthread-safety-beta -Werror. Guards against the annotation layer
// rotting into something that rejects correct code — each construct here
// mirrors a pattern used in src/.
#include "core/sync.hpp"

#include <chrono>
#include <deque>
#include <string>
#include <unordered_map>

namespace {

// Mutex + CondVar: guarded fields, a REQUIRES helper, an explicit wait
// loop, an early Unlock()/Lock() round trip, and the contention probe.
class Queue {
 public:
  void Push(int v) SS_EXCLUDES(mu_) {
    ss::MutexLock lock(mu_, ss::MutexLock::ProbeContention{});
    if (lock.contended()) ++contended_;
    items_.push_back(v);
    cv_.NotifyOne();
  }

  int PopBlocking() SS_EXCLUDES(mu_) {
    ss::MutexLock lock(mu_);
    while (items_.empty()) cv_.Wait(lock);
    return PopLocked();
  }

  bool PopFor(std::chrono::milliseconds d, int* out) SS_EXCLUDES(mu_) {
    ss::MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + d;
    while (items_.empty()) {
      if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout &&
          items_.empty()) {
        return false;
      }
    }
    *out = PopLocked();
    return true;
  }

  void DrainThenNotify() SS_EXCLUDES(mu_) {
    ss::MutexLock lock(mu_);
    items_.clear();
    lock.Unlock();
    cv_.NotifyAll();
    lock.Lock();
    ++contended_;
  }

  bool TryTouch() SS_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    ++contended_;
    mu_.Unlock();
    return true;
  }

 private:
  int PopLocked() SS_REQUIRES(mu_) {
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

  ss::Mutex mu_;
  ss::CondVar cv_;
  std::deque<int> items_ SS_GUARDED_BY(mu_);
  int contended_ SS_GUARDED_BY(mu_) = 0;
};

// SharedMutex: reader/writer scoped holds with a writer early-unlock.
class Directory {
 public:
  void Insert(const std::string& k, int v) SS_EXCLUDES(mu_) {
    ss::WriterMutexLock lock(mu_);
    entries_[k] = v;
    lock.Unlock();
  }

  int Lookup(const std::string& k) const SS_EXCLUDES(mu_) {
    ss::ReaderMutexLock lock(mu_);
    const auto it = entries_.find(k);
    return it == entries_.end() ? -1 : it->second;
  }

 private:
  mutable ss::SharedMutex mu_;
  std::unordered_map<std::string, int> entries_ SS_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  int v = q.PopBlocking();
  (void)q.PopFor(std::chrono::milliseconds(1), &v);
  q.DrainThenNotify();
  (void)q.TryTouch();

  Directory d;
  d.Insert("a", 1);
  return d.Lookup("a") == 1 ? 0 : 1;
}
