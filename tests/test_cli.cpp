// End-to-end tests of the `ssched` CLI: invoked as a subprocess against the
// demo problem, the shipped example file, and error paths.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

/// Runs a command, capturing stdout+stderr.
CliResult RunCommand(const std::string& command) {
  CliResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::size_t n = fread(buffer.data(), 1, buffer.size(), pipe)) {
    result.output.append(buffer.data(), n);
    if (n < buffer.size()) break;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Locates the ssched binary relative to the ctest working directory.
std::string FindSsched() {
  for (const char* path : {"tools/ssched", "./ssched", "../tools/ssched",
                           "build/tools/ssched"}) {
    if (FILE* f = fopen(path, "r")) {
      fclose(f);
      return path;
    }
  }
  return "";
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    binary_ = FindSsched();
    if (binary_.empty()) {
      GTEST_SKIP() << "ssched binary not found from test cwd";
    }
  }
  std::string binary_;
};

TEST_F(CliTest, DemoModeProducesSchedule) {
  auto result = RunCommand(binary_ + " --demo --frames 2");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("optimal schedule"), std::string::npos);
  EXPECT_NE(result.output.find("pipelined:"), std::string::npos);
  EXPECT_NE(result.output.find("channel occupancy"), std::string::npos);
  EXPECT_NE(result.output.find("T4"), std::string::npos);
}

TEST_F(CliTest, HeuristicModeRuns) {
  auto result = RunCommand(binary_ + " --demo --heuristic --frames 2");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("heuristic"), std::string::npos);
}

TEST_F(CliTest, ThroughputBoundMode) {
  auto result =
      RunCommand(binary_ + " --demo --throughput-bound 4s --frames 2");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("throughput mode"), std::string::npos);
}

TEST_F(CliTest, InfeasibleThroughputBoundFails) {
  auto result =
      RunCommand(binary_ + " --demo --throughput-bound 1us --frames 2");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, MissingFileReportsError) {
  auto result = RunCommand(binary_ + " /nonexistent.ssg");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, NoArgumentsShowsUsage) {
  auto result = RunCommand(binary_);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, BadRegimeRejected) {
  auto result = RunCommand(binary_ + " --demo --regime 99");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("out of range"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagShowsUsage) {
  auto result = RunCommand(binary_ + " --demo --bogus-flag");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown option '--bogus-flag'"),
            std::string::npos);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, MissingFlagOperandShowsUsage) {
  auto result = RunCommand(binary_ + " --demo --regime");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);

  auto frames = RunCommand(binary_ + " --demo --frames");
  EXPECT_EQ(frames.exit_code, 2);
  EXPECT_NE(frames.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, NonNumericOperandShowsUsage) {
  auto result = RunCommand(binary_ + " --demo --regime banana");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("expects an integer"), std::string::npos);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);

  auto gantt = RunCommand(binary_ + " --demo --gantt-ms 1.5x");
  EXPECT_EQ(gantt.exit_code, 2);
  EXPECT_NE(gantt.output.find("expects a number"), std::string::npos);
}

TEST_F(CliTest, SecondPositionalOperandRejected) {
  auto result = RunCommand(binary_ + " a.ssg b.ssg");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("more than one input file"),
            std::string::npos);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, NonPositiveServeBenchRejected) {
  auto result = RunCommand(binary_ + " --demo --serve-bench 0");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("positive"), std::string::npos);
}

TEST_F(CliTest, ServeBenchReportsServiceStats) {
  auto result = RunCommand(binary_ + " --demo --serve-bench 2");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("serve-bench: 2 clients"),
            std::string::npos);
  EXPECT_NE(result.output.find("req/s"), std::string::npos);
  EXPECT_NE(result.output.find("solver invocations"), std::string::npos);
  EXPECT_NE(result.output.find("0 failed"), std::string::npos);
}

TEST_F(CliTest, VerifySubcommandAuditsSnapshots) {
  // Build a snapshot by serving a tiny problem, then audit it.
  const std::string problem_path = "test_cli_verify.ssg";
  const std::string snapshot_path = problem_path + ".sscache";
  {
    std::ofstream spec(problem_path);
    spec << "machine nodes=1 procs_per_node=2\n"
         << "comm intra_latency=5us intra_bandwidth=4000"
         << " inter_latency=30us inter_bandwidth=100\n"
         << "task src source\n"
         << "task sink\n"
         << "channel c bytes=100 producer=src consumers=sink\n"
         << "regimes 1\n"
         << "cost regime=0 task=src serial=10us\n"
         << "cost regime=0 task=sink serial=20us\n";
  }
  auto bench = RunCommand(binary_ + " " + problem_path + " --serve-bench 1");
  ASSERT_EQ(bench.exit_code, 0) << bench.output;

  auto clean = RunCommand(binary_ + " verify " + problem_path + " " +
                          snapshot_path);
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  EXPECT_NE(clean.output.find("verified"), std::string::npos);

  // Structurally corrupt the snapshot: pile every op onto proc 0 at t=0.
  // The verifier must reject it and the audit must exit nonzero.
  {
    std::ifstream in(snapshot_path);
    ASSERT_TRUE(in.good());
    std::ostringstream rewritten;
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("op ", 0) == 0) {
        long long op = 0, proc = 0, start = 0, duration = 0;
        std::istringstream ls(line.substr(3));
        ls >> op >> proc >> start >> duration;
        rewritten << "op " << op << " 0 0 " << duration << "\n";
      } else {
        rewritten << line << "\n";
      }
    }
    in.close();
    std::ofstream out(snapshot_path, std::ios::trunc);
    out << rewritten.str();
  }
  auto corrupt = RunCommand(binary_ + " verify " + problem_path + " " +
                            snapshot_path);
  EXPECT_NE(corrupt.exit_code, 0);
  EXPECT_NE(corrupt.output.find("CORRUPT_ARTIFACT"), std::string::npos)
      << corrupt.output;

  std::remove(problem_path.c_str());
  std::remove(snapshot_path.c_str());
}

TEST_F(CliTest, VerifySubcommandUsageErrors) {
  auto missing = RunCommand(binary_ + " verify only_one_arg");
  EXPECT_NE(missing.exit_code, 0);
  EXPECT_NE(missing.output.find("verify needs a problem file"),
            std::string::npos);

  auto nofile =
      RunCommand(binary_ + " verify /nonexistent.ssg /nonexistent.sscache");
  EXPECT_NE(nofile.exit_code, 0);
  EXPECT_NE(nofile.output.find("error"), std::string::npos);
}

}  // namespace
