// Tests for the RAII connection wrappers and typed endpoints.
#include <gtest/gtest.h>

#include <thread>

#include "stm/connection.hpp"

namespace ss::stm {
namespace {

TEST(ConnectionTest, DetachesOnDestruction) {
  Channel ch(ChannelId(0), "c");
  Writer<int> writer(&ch);
  {
    Connection input(&ch, ConnDir::kInput);
    ASSERT_TRUE(writer.Put(0, 1).ok());
    ASSERT_TRUE(writer.Put(1, 2).ok());
    // While attached (and unconsumed), nothing is reclaimed.
    EXPECT_EQ(ch.Occupancy(), 2u);
  }
  // Input detached: with no input connections nothing pins... and nothing
  // collects either (no consumers). Attach a consumer and check it starts
  // fresh.
  Reader<int> reader(&ch);
  auto v = reader.Get(TsQuery::Oldest(), GetMode::kNonBlocking);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->second, 1);
}

TEST(ConnectionTest, MoveTransfersOwnership) {
  Channel ch(ChannelId(0), "c");
  Connection a(&ch, ConnDir::kInput);
  ConnId id = a.id();
  Connection b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id);
  Connection c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c.valid());
}

TEST(ConnectionTest, ReleaseIsIdempotent) {
  Channel ch(ChannelId(0), "c");
  Connection a(&ch, ConnDir::kInput);
  a.Release();
  a.Release();
  EXPECT_FALSE(a.valid());
}

TEST(TypedEndpointsTest, WriteReadConsume) {
  Channel ch(ChannelId(0), "typed", ChannelOptions{4});
  Writer<std::string> writer(&ch);
  Reader<std::string> reader(&ch);
  ASSERT_TRUE(writer.Put(0, "a").ok());
  ASSERT_TRUE(writer.Put(1, "b").ok());
  auto v = reader.Get(TsQuery::Exact(1), GetMode::kNonBlocking);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->second, "b");
  ASSERT_TRUE(reader.Consume(1).ok());
  EXPECT_EQ(ch.Occupancy(), 0u);
}

TEST(TypedEndpointsTest, NextStreamsInOrder) {
  Channel ch(ChannelId(0), "stream");
  Writer<int> writer(&ch);
  Reader<int> reader(&ch);
  for (Timestamp t = 0; t < 5; ++t) {
    ASSERT_TRUE(writer.Put(t, static_cast<int>(t) * 10).ok());
  }
  for (Timestamp t = 0; t < 5; ++t) {
    auto v = reader.Next(GetMode::kNonBlocking);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->first, t);
    EXPECT_EQ(*v->second, static_cast<int>(t) * 10);
  }
  EXPECT_EQ(reader.last_gotten(), 4);
  // Stream drained.
  EXPECT_FALSE(reader.Next(GetMode::kNonBlocking).ok());
  // ConsumeGotten collects everything seen.
  ASSERT_TRUE(reader.ConsumeGotten().ok());
  EXPECT_EQ(ch.Occupancy(), 0u);
}

TEST(TypedEndpointsTest, ProducerConsumerThreads) {
  Channel ch(ChannelId(0), "pc", ChannelOptions{2});
  Writer<int> writer(&ch);
  Reader<int> reader(&ch);
  constexpr int kN = 100;
  std::thread producer([&] {
    for (Timestamp t = 0; t < kN; ++t) {
      ASSERT_TRUE(writer.Put(t, static_cast<int>(t)).ok());
    }
  });
  int sum = 0;
  for (int i = 0; i < kN; ++i) {
    auto v = reader.Next(GetMode::kBlocking);
    ASSERT_TRUE(v.ok());
    sum += *v->second;
    ASSERT_TRUE(reader.ConsumeGotten().ok());
  }
  producer.join();
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(TypedEndpointsTest, ReaderReleaseUnpinsGc) {
  Channel ch(ChannelId(0), "gc");
  Writer<int> writer(&ch);
  Reader<int> keep(&ch);
  Reader<int> lazy(&ch);
  for (Timestamp t = 0; t < 4; ++t) {
    ASSERT_TRUE(writer.Put(t, 0).ok());
  }
  ASSERT_TRUE(keep.Consume(3).ok());
  EXPECT_EQ(ch.Occupancy(), 4u);  // lazy pins everything
  lazy.Release();
  EXPECT_EQ(ch.Occupancy(), 0u);
}

}  // namespace
}  // namespace ss::stm
