// Cross-layer consistency: the deterministic schedule replay, the online
// simulator, the analytic occupancy bound and the format round trip must
// all tell the same story about the same problem.
#include <gtest/gtest.h>

#include "graph/graph_io.hpp"
#include "graph/op_graph.hpp"
#include "regime/manager.hpp"
#include "regime/schedule_table.hpp"
#include "sched/occupancy.hpp"
#include "sched/optimal.hpp"
#include "sim/online_sim.hpp"
#include "sim/schedule_executor.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::MachineConfig;
using graph::OpGraph;

constexpr RegimeId kR0 = RegimeId(0);

struct KioskFixture {
  tracker::TrackerGraph tg;
  regime::RegimeSpace space{8, 8};
  graph::CostModel costs;

  KioskFixture() : tg(tracker::BuildTrackerGraph()) {
    tracker::PaperCostParams pcp;
    pcp.scale = 0.01;
    costs = tracker::PaperCostModel(tg, space, pcp);
  }
};

TEST(ConsistencyTest, UnderloadedOnlineSimMatchesCriticalPath) {
  // With a run-to-completion quantum, free comm and one frame in flight,
  // even the generic online scheduler achieves the op graph's critical
  // path: the gap in Fig. 3 comes from load, not from simulation artifacts.
  KioskFixture fx;
  std::vector<VariantId> serial(fx.tg.graph.task_count(), VariantId(0));
  OpGraph og = OpGraph::Expand(fx.tg.graph, fx.costs, kR0, serial);

  sim::OnlineSimOptions opts;
  opts.digitizer_period = og.TotalWork() * 2;  // one frame at a time
  opts.quantum = ticks::FromSeconds(60);       // never preempt
  opts.context_switch = 0;
  opts.frames = 6;
  sim::OnlineSimulator sim(og, MachineConfig::SingleNode(4), opts);
  auto result = sim.Run();
  ASSERT_EQ(result.metrics.frames_completed, 6u);
  EXPECT_NEAR(result.metrics.latency_seconds.min,
              ticks::ToSeconds(og.CriticalPath()), 1e-6);
}

TEST(ConsistencyTest, ReplayLatencyEqualsManagerReplay) {
  // The schedule replayer and the regime manager's steady-state replay are
  // two code paths computing the same thing.
  KioskFixture fx;
  auto table = regime::ScheduleTable::Precompute(
      fx.space, fx.tg.graph, fx.costs, CommModel(),
      MachineConfig::SingleNode(4));
  ASSERT_TRUE(table.ok());
  const auto& entry = table->Get(kR0);

  sim::ScheduleRunOptions run;
  run.frames = 12;
  auto replay = sim::RunSchedule(entry.schedule, *entry.op_graph, run);

  regime::RegimeManager manager(fx.space, *table);
  regime::StateTimeline still(8, {});
  regime::RegimeRunOptions mr;
  mr.horizon = entry.schedule.initiation_interval * 12;
  auto managed = manager.Replay(still, mr);

  EXPECT_NEAR(replay.metrics.latency_seconds.mean,
              managed.metrics.latency_seconds.mean, 1e-9);
}

TEST(ConsistencyTest, OccupancyBoundCoversReplayObservation) {
  // Count the maximum simultaneously-live items per channel directly from
  // the replay trace and check the analytic bound dominates it.
  KioskFixture fx;
  sched::OptimalScheduler scheduler(fx.tg.graph, fx.costs, CommModel(),
                                    MachineConfig::SingleNode(4));
  auto result = scheduler.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  OpGraph og = OpGraph::Expand(fx.tg.graph, fx.costs, kR0,
                               result->best.iteration.variants());
  auto report = sched::AnalyzeOccupancy(fx.tg.graph, og, result->best);

  // Direct count: item k of channel c is live from producer-exit end to
  // last-consumer-exit end (frame offset k * II).
  const Tick ii = result->best.initiation_interval;
  for (const auto& occ : report.channels) {
    if (occ.max_items == 0) continue;
    const TaskId producer = fx.tg.graph.producer(occ.channel);
    Tick live_max = 0;
    const auto& consumers = fx.tg.graph.consumers(occ.channel);
    const Tick put =
        result->best.iteration.EntryFor(og.TaskExit(producer)).end();
    Tick release = put;
    for (TaskId cons : consumers) {
      release = std::max(
          release, result->best.iteration.EntryFor(og.TaskExit(cons)).end());
    }
    // Sample live counts at every put instant over 32 frames.
    for (int k = 0; k < 32; ++k) {
      const Tick at = put + static_cast<Tick>(k) * ii;
      Tick live = 0;
      for (int j = 0; j <= k; ++j) {
        const Tick put_j = put + static_cast<Tick>(j) * ii;
        const Tick rel_j = release + static_cast<Tick>(j) * ii;
        if (put_j <= at && at < rel_j) ++live;
      }
      live_max = std::max(live_max, live);
    }
    EXPECT_LE(static_cast<std::size_t>(live_max), occ.max_items)
        << occ.name;
  }
}

TEST(ConsistencyTest, TrackerProblemRoundTripsThroughFormat) {
  // The full paper problem survives serialization: same optimal latency
  // before and after a FormatProblem/ParseProblem round trip.
  KioskFixture fx;
  graph::ProblemSpec spec;
  spec.graph = std::move(fx.tg.graph);
  spec.costs = std::move(fx.costs);
  spec.machine = MachineConfig::SingleNode(4);
  spec.regime_count = 1;

  sched::OptimalScheduler before(spec.graph, spec.costs, spec.comm,
                                 spec.machine);
  auto a = before.Schedule(kR0);
  ASSERT_TRUE(a.ok());

  auto reparsed = graph::ParseProblem(graph::FormatProblem(spec));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  sched::OptimalScheduler after(reparsed->graph, reparsed->costs,
                                reparsed->comm, reparsed->machine);
  auto b = after.Schedule(kR0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->min_latency, b->min_latency);
  EXPECT_EQ(a->best.initiation_interval, b->best.initiation_interval);
}

}  // namespace
}  // namespace ss
