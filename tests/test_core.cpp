// Unit tests for the core utilities: time, ids, status/expected, rng,
// stats, and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <unordered_set>

#include "core/ascii_table.hpp"
#include "core/deadline.hpp"
#include "core/error.hpp"
#include "core/ids.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/steal_deque.hpp"
#include "core/sync.hpp"
#include "core/time.hpp"
#include "core/worker_pool.hpp"

namespace ss {
namespace {

// ---- time -------------------------------------------------------------------

TEST(TimeTest, TickConversions) {
  EXPECT_EQ(ticks::FromSeconds(1.5), 1'500'000);
  EXPECT_EQ(ticks::FromMillis(33), 33'000);
  EXPECT_EQ(ticks::FromMicros(7), 7);
  EXPECT_DOUBLE_EQ(ticks::ToSeconds(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(ticks::ToMillis(1'500), 1.5);
}

TEST(TimeTest, FormatTick) {
  EXPECT_EQ(FormatTick(kNoTick), "-");
  EXPECT_EQ(FormatTick(500), "500us");
  EXPECT_EQ(FormatTick(ticks::FromMillis(12.5)), "12.50ms");
  EXPECT_EQ(FormatTick(ticks::FromSeconds(3.214)), "3.214s");
}

TEST(TimeTest, FormatNegativeTick) {
  EXPECT_EQ(FormatTick(-500), "-500us");
}

TEST(TimeTest, StopwatchMonotone) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  EXPECT_GE(sw.Elapsed(), 0);
}

// ---- ids --------------------------------------------------------------------

TEST(IdsTest, DefaultIsInvalid) {
  TaskId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, TaskId::Invalid());
}

TEST(IdsTest, ValueAndIndex) {
  TaskId id(3);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3);
  EXPECT_EQ(id.index(), 3u);
}

TEST(IdsTest, Ordering) {
  EXPECT_LT(ProcId(1), ProcId(2));
  EXPECT_EQ(ProcId(2), ProcId(2));
  EXPECT_NE(ProcId(1), ProcId(2));
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, ChannelId>);
  static_assert(!std::is_same_v<ProcId, NodeId>);
}

TEST(IdsTest, Hashable) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId(1));
  set.insert(TaskId(2));
  set.insert(TaskId(1));
  EXPECT_EQ(set.size(), 2u);
}

// ---- error ------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_TRUE(e.status().ok());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e(InvalidArgumentError("bad"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExpectedTest, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(7));
  ASSERT_TRUE(e.ok());
  std::unique_ptr<int> v = std::move(e).value();
  EXPECT_EQ(*v, 7);
}

// ---- rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, GaussianMomentsApproximate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

// ---- stats ------------------------------------------------------------------

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.Add(i);
    all.Add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.Add(i * 0.5);
    all.Add(i * 0.5);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, CovZeroMean) {
  RunningStats s;
  s.Add(-1);
  s.Add(1);
  EXPECT_EQ(s.cov(), 0.0);  // mean 0 guards division
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
}

TEST(SummarizeTest, Basic) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GT(s.cov, 0.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(SummarizeTest, EmptyInput) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ---- ascii table -------------------------------------------------------------

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1.5"});
  t.AddRow({"b", "12.25"});
  std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("12.25"), std::string::npos);
  // Header separator line of dashes present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(AsciiTableTest, EmptyRendersEmpty) {
  AsciiTable t;
  EXPECT_EQ(t.Render(), "");
}

TEST(AsciiTableTest, RuleBetweenRows) {
  AsciiTable t;
  t.AddRow({"a"});
  t.AddRule();
  t.AddRow({"b"});
  std::string out = t.Render();
  auto a = out.find("a");
  auto dash = out.find('-', a);
  auto b = out.find("b", a);
  EXPECT_LT(a, dash);
  EXPECT_LT(dash, b);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

// ---- worker pool -------------------------------------------------------------

TEST(WorkerPoolTest, SubmitWithoutWaitRunsEveryTask) {
  // Lost-wakeup regression: the schedule service submits tasks and blocks on
  // a future without ever calling Wait(), so a notify that slips into a
  // worker's predicate-check-to-block window must not strand a queued task.
  // Many short rounds against freshly idle workers maximize exposure of
  // that window; a stranded task shows up as a timeout here.
  constexpr int kRounds = 200;
  constexpr int kTasks = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran{0};
    std::promise<void> all_done;
    auto done = all_done.get_future();
    WorkerPool pool(2);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&] {
        if (ran.fetch_add(1) + 1 == kTasks) all_done.set_value();
      });
    }
    ASSERT_EQ(done.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "round " << round << ": a submitted task never ran";
  }
}

// ---- deadline ----------------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), kTickInfinity);
  EXPECT_TRUE(Deadline::After(kTickInfinity).infinite());
  EXPECT_TRUE(Deadline::AtWall(kTickInfinity).infinite());
}

TEST(DeadlineTest, ExpiryAndClampedRemaining) {
  const Deadline past = Deadline::After(0);
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), 0);
  EXPECT_TRUE(Deadline::After(-ticks::FromSeconds(1)).expired());

  const Deadline soon = Deadline::After(ticks::FromSeconds(60));
  EXPECT_FALSE(soon.infinite());
  EXPECT_FALSE(soon.expired());
  EXPECT_GT(soon.remaining(), 0);
  EXPECT_LE(soon.remaining(), ticks::FromSeconds(60));
}

TEST(DeadlineTest, AtWallMatchesWallNow) {
  const Tick now = WallNow();
  EXPECT_TRUE(Deadline::AtWall(now - 1).expired());
  const Deadline later = Deadline::AtWall(now + ticks::FromSeconds(60));
  EXPECT_FALSE(later.expired());
  EXPECT_EQ(later.at(), now + ticks::FromSeconds(60));
}

TEST(DeadlineTest, WaitOnceTimesOutThenSeesPredicate) {
  Mutex mu;
  CondVar cv;
  bool flag = false;
  {
    // Expired deadline + false condition: reports the timeout immediately.
    const Deadline d = Deadline::After(ticks::FromMillis(2));
    MutexLock lock(mu);
    while (!flag) {
      if (!d.WaitOnce(cv, lock)) break;
    }
    EXPECT_FALSE(flag);
  }
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(mu);
    flag = true;
    cv.NotifyAll();
  });
  {
    const Deadline d = Deadline::After(ticks::FromSeconds(30));
    MutexLock lock(mu);
    while (!flag) {
      if (!d.WaitOnce(cv, lock)) break;
    }
    EXPECT_TRUE(flag);
  }
  setter.join();
}

// ---- steal deque ------------------------------------------------------------

TEST(StealDequeTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(StealDeque<int>(1).capacity(), 2u);
  EXPECT_EQ(StealDeque<int>(2).capacity(), 2u);
  EXPECT_EQ(StealDeque<int>(3).capacity(), 4u);
  EXPECT_EQ(StealDeque<int>(256).capacity(), 256u);
  EXPECT_EQ(StealDeque<int>(300).capacity(), 512u);
}

TEST(StealDequeTest, OwnerPopsLifoThievesStealFifo) {
  int items[4] = {10, 11, 12, 13};
  StealDeque<int> dq(8);
  for (int& item : items) ASSERT_TRUE(dq.Push(&item));
  EXPECT_EQ(dq.SizeApprox(), 4u);
  // A thief takes the oldest (shallowest) entry.
  EXPECT_EQ(dq.Steal(), &items[0]);
  // The owner takes the newest (deepest).
  EXPECT_EQ(dq.Pop(), &items[3]);
  EXPECT_EQ(dq.Steal(), &items[1]);
  EXPECT_EQ(dq.Pop(), &items[2]);
  EXPECT_EQ(dq.Pop(), nullptr);
  EXPECT_EQ(dq.Steal(), nullptr);
  EXPECT_EQ(dq.SizeApprox(), 0u);
}

TEST(StealDequeTest, PushReportsOverflowWhenFull) {
  int items[3] = {1, 2, 3};
  StealDeque<int> dq(2);
  ASSERT_TRUE(dq.Push(&items[0]));
  ASSERT_TRUE(dq.Push(&items[1]));
  EXPECT_FALSE(dq.Push(&items[2]));
  // Draining one entry makes room again.
  EXPECT_EQ(dq.Steal(), &items[0]);
  EXPECT_TRUE(dq.Push(&items[2]));
  EXPECT_EQ(dq.Pop(), &items[2]);
  EXPECT_EQ(dq.Pop(), &items[1]);
  EXPECT_EQ(dq.Pop(), nullptr);
}

TEST(StealDequeTest, ConcurrentOwnerAndThievesConsumeEachItemOnce) {
  // The owner pushes kItems entries while popping intermittently; three
  // thieves steal concurrently. Every item must be consumed exactly once
  // across all four threads — the classic Chase-Lev correctness property,
  // and the test TSan exercises for the fence orderings.
  constexpr int kItems = 20'000;
  constexpr int kThieves = 3;
  std::vector<int> items(kItems);
  for (int i = 0; i < kItems; ++i) items[static_cast<std::size_t>(i)] = i;

  StealDeque<int> dq(128);
  std::atomic<bool> done{false};
  std::vector<std::vector<int>> taken(kThieves + 1);

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&dq, &done, &taken, t] {
      auto& mine = taken[static_cast<std::size_t>(t) + 1];
      while (!done.load(std::memory_order_acquire)) {
        if (int* item = dq.Steal()) {
          mine.push_back(*item);
        } else {
          std::this_thread::yield();
        }
      }
      while (int* item = dq.Steal()) mine.push_back(*item);
    });
  }

  auto& owner_taken = taken[0];
  for (int i = 0; i < kItems; ++i) {
    while (!dq.Push(&items[static_cast<std::size_t>(i)])) {
      if (int* item = dq.Pop()) owner_taken.push_back(*item);
    }
    // Pop roughly half the time so both owner paths stay hot.
    if ((i & 1) != 0) {
      if (int* item = dq.Pop()) owner_taken.push_back(*item);
    }
  }
  while (int* item = dq.Pop()) owner_taken.push_back(*item);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  // Late entries could race the thieves' final drain; sweep what's left.
  while (int* item = dq.Pop()) owner_taken.push_back(*item);

  std::set<int> seen;
  std::size_t total = 0;
  for (const auto& bucket : taken) {
    total += bucket.size();
    for (int v : bucket) {
      EXPECT_TRUE(seen.insert(v).second) << "item " << v << " taken twice";
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kItems));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kItems));
}

}  // namespace
}  // namespace ss
