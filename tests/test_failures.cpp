// Failure injection: the runtime must fail loudly and cleanly — no hangs,
// no partial results passed off as complete — when bodies error, channels
// shut down mid-run, or runs exceed their time budget.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "graph/op_graph.hpp"
#include "runtime/app.hpp"
#include "runtime/free_runner.hpp"
#include "runtime/scheduled_runner.hpp"
#include "runtime/splitjoin.hpp"
#include "sched/optimal.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::runtime {
namespace {

tracker::TrackerParams SmallParams() {
  tracker::TrackerParams p;
  p.width = 64;
  p.height = 48;
  p.target_size = 10;
  return p;
}

/// A body that fails on a chosen timestamp.
class FaultyBody : public TaskBody {
 public:
  FaultyBody(std::unique_ptr<TaskBody> inner, Timestamp fail_at)
      : inner_(std::move(inner)), fail_at_(fail_at) {}

  bool NeedsHistory() const override { return inner_->NeedsHistory(); }

  Status Process(const TaskInputs& in, TaskOutputs* out) override {
    if (in.ts == fail_at_) {
      return InternalError("injected failure at ts=" +
                           std::to_string(in.ts));
    }
    return inner_->Process(in, out);
  }

 private:
  std::unique_ptr<TaskBody> inner_;
  Timestamp fail_at_;
};

TEST(FailureTest, ScheduledRunnerReportsBodyError) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  regime::RegimeSpace space(2, 2);
  tracker::MeasureOptions mo;
  mo.repetitions = 1;
  mo.fp_options = {1};
  graph::CostModel costs = tracker::MeasureCostModel(tg, space, params, mo);

  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 2; }, 4,
                                &app);
  // Wrap the histogram body so frame 3 fails.
  app.SetBody(tg.histogram, std::make_unique<FaultyBody>(
                                std::make_unique<tracker::HistogramBody>(),
                                3));
  ASSERT_TRUE(app.Materialize().ok());

  sched::OptimalScheduler scheduler(tg.graph, costs, graph::CommModel(),
                                    graph::MachineConfig::SingleNode(4));
  std::vector<VariantId> serial(tg.graph.task_count(), VariantId(0));
  auto sched_result = scheduler.ScheduleWithVariants(RegimeId(0), serial);
  ASSERT_TRUE(sched_result.ok());
  graph::OpGraph og =
      graph::OpGraph::Expand(tg.graph, costs, RegimeId(0), serial);

  ScheduledRunOptions opts;
  opts.frames = 8;
  ScheduledRunner runner(app, og, sched_result->best, opts);
  auto result = runner.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("injected failure"),
            std::string::npos)
      << result.status().ToString();
}

TEST(FailureTest, FreeRunnerSurvivesDigitizerFailure) {
  // A failing digitizer frame is dropped; the rest of the run completes.
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 1; }, 4,
                                &app);
  app.SetBody(tg.digitizer,
              std::make_unique<FaultyBody>(
                  std::make_unique<tracker::DigitizerBody>(
                      params, [](Timestamp) { return 1; }),
                  2));
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 6;
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->timed_out);
  EXPECT_EQ(result->metrics.frames_dropped, 1u);
  EXPECT_EQ(result->metrics.frames_completed, 5u);
}

TEST(FailureTest, FreeRunnerTimesOutWhenWorkerDies) {
  // A failing mid-pipeline body terminates its thread; the runner must hit
  // its timeout rather than hang, and report timed_out.
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 1; }, 4,
                                &app);
  app.SetBody(tg.peak_detection,
              std::make_unique<FaultyBody>(
                  std::make_unique<tracker::PeakDetectionBody>(), 1));
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 4;
  opts.timeout = ticks::FromMillis(500);
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_LT(result->metrics.frames_completed, 4u);
}

TEST(FailureTest, SplitJoinWorkerFailurePropagatesAndJoins) {
  tracker::TrackerParams params = SmallParams();
  auto enrolled = std::make_shared<const tracker::ModelSet>(
      tracker::MakeModelSet(params, 4));
  tracker::TargetDetectionBody body(params, enrolled);

  class FailingChunkBody : public TaskBody {
   public:
    explicit FailingChunkBody(tracker::TargetDetectionBody* inner)
        : inner_(inner) {}
    Status Process(const TaskInputs& in, TaskOutputs* out) override {
      return inner_->Process(in, out);
    }
    Status ProcessChunk(const TaskInputs& in, int chunk, int nchunks,
                        stm::Payload* partial) override {
      if (in.ts == 1 && chunk == 1) {
        return InternalError("chunk blew up");
      }
      return inner_->ProcessChunk(in, chunk, nchunks, partial);
    }
    Status Join(const TaskInputs& in, std::vector<stm::Payload> partials,
                TaskOutputs* out) override {
      return inner_->Join(in, std::move(partials), out);
    }

   private:
    tracker::TargetDetectionBody* inner_;
  };

  body.SetDecomposition(2, 1);
  FailingChunkBody faulty(&body);
  DecompositionTable table;
  table.Set(RegimeId(0), Decomposition{2, 0});
  SplitJoinHarness harness(&faulty, table, SplitJoinOptions{2, 8});
  Status s = harness.Run(
      4,
      [&](Timestamp ts) -> Expected<TaskInputs> {
        tracker::Frame f = tracker::SynthesizeFrame(params, ts, 2);
        f.num_targets = 2;
        tracker::FrameHistogram fh = tracker::ComputeHistogram(f);
        tracker::MotionMask mask = tracker::ChangeDetect(f, nullptr);
        TaskInputs in;
        in.ts = ts;
        in.items = {
            stm::Item{ts, stm::Payload::Make<tracker::Frame>(std::move(f))},
            stm::Item{ts, stm::Payload::Make<tracker::FrameHistogram>(
                              std::move(fh))},
            stm::Item{ts, stm::Payload::Make<tracker::MotionMask>(
                              std::move(mask))},
        };
        return in;
      },
      [](Timestamp, TaskOutputs) {}, [](Timestamp) { return RegimeId(0); });
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("chunk blew up"), std::string::npos);
}

TEST(FailureTest, ShutdownDuringFreeRunWakesEverything) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 1; }, 4,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 1000;  // far more than we let run
  opts.digitizer_period = ticks::FromMillis(5);
  opts.timeout = ticks::FromSeconds(30);
  std::atomic<bool> done{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    app.ShutdownChannels();
    done.store(true);
  });
  FreeRunner runner(app, opts);
  auto result = runner.Run();  // must return promptly after shutdown
  killer.join();
  EXPECT_TRUE(done.load());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->metrics.frames_completed, 1000u);
}

}  // namespace
}  // namespace ss::runtime
