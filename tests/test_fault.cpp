// Fault-tolerance tests: the fault model (plans, machine health, degraded
// mode spaces), fault injection in the online simulator, degraded schedule
// tables and the fault-tolerant manager's table-switch recovery, the
// service's resilience paths (retry, watchdog cancellation, graceful
// degradation), and crash-safe snapshot round trips.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "fault/fault.hpp"
#include "graph/graph_io.hpp"
#include "graph/op_graph.hpp"
#include "graph/synthetic.hpp"
#include "regime/arrivals.hpp"
#include "regime/degraded_table.hpp"
#include "regime/fault_manager.hpp"
#include "regime/regime.hpp"
#include "sched/optimal.hpp"
#include "service/schedule_cache.hpp"
#include "service/schedule_service.hpp"
#include "sim/online_sim.hpp"

namespace ss {
namespace {

using graph::MachineConfig;

constexpr RegimeId kR0 = RegimeId(0);

/// A small three-task pipeline (same shape as the service tests); `salt`
/// perturbs costs so distinct salts give distinct fingerprints.
std::shared_ptr<graph::ProblemSpec> MakeSpec(int salt,
                                             std::size_t regimes = 1,
                                             MachineConfig machine =
                                                 MachineConfig::SingleNode(2)) {
  auto spec = std::make_shared<graph::ProblemSpec>();
  const TaskId src = spec->graph.AddTask("src", /*is_source=*/true);
  const TaskId mid = spec->graph.AddTask("mid");
  const TaskId sink = spec->graph.AddTask("sink");
  const ChannelId a = spec->graph.AddChannel("a", 100);
  spec->graph.SetProducer(src, a);
  spec->graph.AddConsumer(mid, a);
  const ChannelId b = spec->graph.AddChannel("b", 100);
  spec->graph.SetProducer(mid, b);
  spec->graph.AddConsumer(sink, b);
  for (std::size_t r = 0; r < regimes; ++r) {
    const RegimeId rid(static_cast<RegimeId::underlying_type>(r));
    const Tick scale = static_cast<Tick>(r + 1);
    spec->costs.Set(rid, src, graph::TaskCost::Serial(100 + salt));
    graph::TaskCost mid_cost = graph::TaskCost::Serial(400 * scale);
    mid_cost.AddVariant(graph::DpVariant{"x2", 2, 180 * scale, 20, 20});
    spec->costs.Set(rid, mid, mid_cost);
    spec->costs.Set(rid, sink, graph::TaskCost::Serial(50));
  }
  spec->machine = machine;
  spec->comm = graph::CommModel::Free();
  spec->regime_count = regimes;
  return spec;
}

// ---- fault plan --------------------------------------------------------------

TEST(FaultPlanTest, ValidatesEvents) {
  const MachineConfig machine = MachineConfig::Cluster(2, 2);
  EXPECT_FALSE(fault::FaultPlan::Create(
                   {fault::FaultEvent::ProcFailStop(0, ProcId(4))}, machine)
                   .ok());
  EXPECT_FALSE(fault::FaultPlan::Create(
                   {fault::FaultEvent::NodeFailStop(0, NodeId(2))}, machine)
                   .ok());
  EXPECT_FALSE(fault::FaultPlan::Create(
                   {fault::FaultEvent::ProcFailStop(-1, ProcId(0))}, machine)
                   .ok());
  EXPECT_FALSE(fault::FaultPlan::Create({fault::FaultEvent::TransientSlowdown(
                                            0, ProcId(0), /*duration=*/0,
                                            /*factor=*/2.0)},
                                        machine)
                   .ok());
  EXPECT_FALSE(fault::FaultPlan::Create({fault::FaultEvent::TransientSlowdown(
                                            0, ProcId(0), /*duration=*/10,
                                            /*factor=*/0.5)},
                                        machine)
                   .ok());
  EXPECT_TRUE(fault::FaultPlan::Create({}, machine).ok());
}

TEST(FaultPlanTest, SortsEventsAndAnswersQueries) {
  const MachineConfig machine = MachineConfig::Cluster(2, 2);
  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::ProcFailStop(100, ProcId(1)),
       fault::FaultEvent::TransientSlowdown(50, ProcId(0), 100, 2.0),
       fault::FaultEvent::TransientSlowdown(100, ProcId(0), 100, 3.0),
       fault::FaultEvent::NodeFailStop(300, NodeId(1))},
      machine);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->events().size(), 4u);
  EXPECT_EQ(plan->events().front().at, 50);
  EXPECT_EQ(plan->events().back().at, 300);

  EXPECT_EQ(plan->HealthAt(99).surviving_procs(), 4);
  EXPECT_EQ(plan->HealthAt(100).surviving_procs(), 3);
  EXPECT_EQ(plan->HealthAt(300).surviving_procs(), 1);

  EXPECT_FALSE(plan->ProcDeadAt(ProcId(1), 99));
  EXPECT_TRUE(plan->ProcDeadAt(ProcId(1), 100));
  EXPECT_TRUE(plan->ProcDeadAt(ProcId(2), 300));  // via its node
  EXPECT_FALSE(plan->ProcDeadAt(ProcId(0), 10'000));

  EXPECT_DOUBLE_EQ(plan->SlowdownAt(ProcId(0), 49), 1.0);
  EXPECT_DOUBLE_EQ(plan->SlowdownAt(ProcId(0), 120), 6.0);  // windows multiply
  EXPECT_DOUBLE_EQ(plan->SlowdownAt(ProcId(0), 160), 3.0);
  EXPECT_DOUBLE_EQ(plan->SlowdownAt(ProcId(0), 200), 1.0);
  EXPECT_DOUBLE_EQ(plan->SlowdownAt(ProcId(1), 120), 1.0);
}

// ---- health space ------------------------------------------------------------

TEST(HealthSpaceTest, SizeAndConfigs) {
  const MachineConfig machine = MachineConfig::Cluster(2, 2);
  const fault::HealthSpace hs(machine, /*max_proc_failures=*/1,
                              /*max_node_failures=*/1);
  EXPECT_EQ(hs.size(), 4u);
  const MachineConfig full = hs.ConfigOf(fault::HealthSpace::FullHealth());
  EXPECT_EQ(full.nodes, 2);
  EXPECT_EQ(full.procs_per_node, 2);
  for (HealthId h : hs.AllModes()) {
    const MachineConfig c = hs.ConfigOf(h);
    EXPECT_GE(c.total_procs(), 1) << hs.Name(h);
    EXPECT_LE(c.total_procs(), machine.total_procs());
  }
  // Clamping keeps at least one processor alive even for absurd maxima.
  const fault::HealthSpace clamped(machine, 99, 99);
  EXPECT_EQ(clamped.max_proc_failures(), 1);
  EXPECT_EQ(clamped.max_node_failures(), 1);
}

TEST(HealthSpaceTest, FromHealthMapsOntoModes) {
  const MachineConfig machine = MachineConfig::Cluster(2, 2);
  const fault::HealthSpace hs(machine, 1, 1);

  fault::MachineHealth all_up = fault::MachineHealth::AllUp(machine);
  EXPECT_EQ(hs.FromHealth(all_up), fault::HealthSpace::FullHealth());

  fault::MachineHealth one_proc = all_up;
  one_proc.FailProc(ProcId(3));
  const HealthId proc_mode = hs.FromHealth(one_proc);
  EXPECT_NE(proc_mode, fault::HealthSpace::FullHealth());
  EXPECT_EQ(hs.ConfigOf(proc_mode).procs_per_node, 1);
  EXPECT_EQ(hs.ConfigOf(proc_mode).nodes, 2);

  fault::MachineHealth node_down = all_up;
  node_down.FailNode(machine, NodeId(0));
  const HealthId node_mode = hs.FromHealth(node_down);
  EXPECT_EQ(hs.ConfigOf(node_mode).nodes, 1);
  EXPECT_EQ(hs.ConfigOf(node_mode).procs_per_node, 2);
}

TEST(HealthSpaceTest, MapToSurvivorLandsOnAliveProcs) {
  const MachineConfig machine = MachineConfig::Cluster(2, 2);
  const fault::HealthSpace hs(machine, 1, 1);

  // P0 and P3 dead: one survivor per node, mode = 1 proc down per node.
  fault::MachineHealth health = fault::MachineHealth::AllUp(machine);
  health.FailProc(ProcId(0));
  health.FailProc(ProcId(3));
  const HealthId mode = hs.FromHealth(health);
  const MachineConfig degraded = hs.ConfigOf(mode);
  ASSERT_EQ(degraded.total_procs(), 2);
  EXPECT_EQ(hs.MapToSurvivor(mode, ProcId(0), health), ProcId(1));
  EXPECT_EQ(hs.MapToSurvivor(mode, ProcId(1), health), ProcId(2));

  // Whole node 0 down: the degraded single node maps onto node 1 intact,
  // preserving intra-node locality.
  fault::MachineHealth node_down = fault::MachineHealth::AllUp(machine);
  node_down.FailNode(machine, NodeId(0));
  const HealthId node_mode = hs.FromHealth(node_down);
  EXPECT_EQ(hs.MapToSurvivor(node_mode, ProcId(0), node_down), ProcId(2));
  EXPECT_EQ(hs.MapToSurvivor(node_mode, ProcId(1), node_down), ProcId(3));
}

// ---- fault injection in the online simulator ---------------------------------

class FaultSimTest : public ::testing::Test {
 protected:
  FaultSimTest() : spec_(MakeSpec(0)) {
    std::vector<VariantId> serial(spec_->graph.task_count(), VariantId(0));
    og_ = std::make_unique<graph::OpGraph>(graph::OpGraph::Expand(
        spec_->graph, spec_->costs, kR0, serial));
  }

  sim::OnlineSimOptions BaseOptions() const {
    sim::OnlineSimOptions opts;
    opts.digitizer_period = og_->TotalWork();
    opts.frames = 20;
    return opts;
  }

  std::shared_ptr<graph::ProblemSpec> spec_;
  std::unique_ptr<graph::OpGraph> og_;
};

TEST_F(FaultSimTest, ProcFailStopLosesFramesButRunContinues) {
  const MachineConfig machine = MachineConfig::SingleNode(2);
  sim::OnlineSimOptions opts = BaseOptions();
  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::ProcFailStop(opts.digitizer_period * 5, ProcId(1))},
      machine);
  ASSERT_TRUE(plan.ok());
  opts.faults = &*plan;

  sim::OnlineSimulator sim(*og_, machine, opts);
  auto result = sim.Run();
  EXPECT_EQ(result.procs_failed, 1);
  // The run keeps completing frames on the survivor.
  EXPECT_GT(result.metrics.frames_completed, 5u);
  // Accounting stays exact: every digitized frame completed, dropped, or
  // was lost to the fault.
  EXPECT_EQ(result.metrics.frames_digitized,
            result.metrics.frames_completed + result.metrics.frames_dropped +
                result.frames_lost_to_faults);
}

TEST_F(FaultSimTest, NodeFailStopKillsEveryProcOfTheNode) {
  const MachineConfig machine = MachineConfig::Cluster(2, 2);
  sim::OnlineSimOptions opts = BaseOptions();
  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::NodeFailStop(opts.digitizer_period * 4, NodeId(1))},
      machine);
  ASSERT_TRUE(plan.ok());
  opts.faults = &*plan;

  sim::OnlineSimulator sim(*og_, machine, opts);
  auto result = sim.Run();
  EXPECT_EQ(result.procs_failed, 2);
  EXPECT_GT(result.metrics.frames_completed, 0u);
}

TEST_F(FaultSimTest, TransientSlowdownStretchesTheRun) {
  const MachineConfig machine = MachineConfig::SingleNode(2);
  sim::OnlineSimOptions opts = BaseOptions();
  sim::OnlineSimulator clean_sim(*og_, machine, opts);
  auto clean = clean_sim.Run();

  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::TransientSlowdown(
          0, ProcId(0), opts.digitizer_period * opts.frames * 4, 4.0)},
      machine);
  ASSERT_TRUE(plan.ok());
  sim::OnlineSimOptions slow_opts = opts;
  slow_opts.faults = &*plan;
  sim::OnlineSimulator slow_sim(*og_, machine, slow_opts);
  auto slow = slow_sim.Run();

  EXPECT_EQ(slow.procs_failed, 0);
  EXPECT_GT(slow.end_time, clean.end_time);
  ASSERT_GT(slow.metrics.frames_completed, 0u);
  EXPECT_GT(slow.metrics.latency_seconds.mean,
            clean.metrics.latency_seconds.mean);
}

TEST_F(FaultSimTest, DeterministicUnderFaults) {
  const MachineConfig machine = MachineConfig::SingleNode(2);
  sim::OnlineSimOptions opts = BaseOptions();
  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::ProcFailStop(opts.digitizer_period * 3, ProcId(1)),
       fault::FaultEvent::TransientSlowdown(opts.digitizer_period, ProcId(0),
                                            opts.digitizer_period * 2, 2.0)},
      machine);
  ASSERT_TRUE(plan.ok());
  opts.faults = &*plan;

  sim::OnlineSimulator a(*og_, machine, opts);
  sim::OnlineSimulator b(*og_, machine, opts);
  auto ra = a.Run();
  auto rb = b.Run();
  EXPECT_EQ(ra.end_time, rb.end_time);
  EXPECT_EQ(ra.metrics.frames_completed, rb.metrics.frames_completed);
  EXPECT_EQ(ra.frames_lost_to_faults, rb.frames_lost_to_faults);
}

// ---- solver cancellation -----------------------------------------------------

TEST(SolverCancelTest, PresetCancelFlagStopsTheSearch) {
  auto spec = MakeSpec(0);
  sched::OptimalScheduler scheduler(spec->graph, spec->costs, spec->comm,
                                    spec->machine);
  std::atomic<bool> cancel{true};
  sched::OptimalOptions opts;
  opts.cancel = &cancel;
  auto result = scheduler.Schedule(kR0, opts);
  if (result.ok()) {
    EXPECT_TRUE(result->cancelled);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status().ToString();
  }
}

// ---- degraded schedule tables ------------------------------------------------

TEST(DegradedTableTest, PrecomputesVerifiedRegimeByHealthGrid) {
  auto spec = MakeSpec(0, /*regimes=*/2);
  const regime::RegimeSpace space(1, 2);
  const fault::HealthSpace hs(spec->machine, /*max_proc_failures=*/1);

  auto table = regime::DegradedScheduleTable::Precompute(space, hs, *spec);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->size(), 4u);  // 2 regimes x 2 health modes

  const HealthId degraded_mode = HealthId(1);
  for (RegimeId r : space.AllRegimes()) {
    const regime::DegradedEntry& full =
        table->Get(r, fault::HealthSpace::FullHealth());
    const regime::DegradedEntry& degraded = table->Get(r, degraded_mode);
    EXPECT_EQ(full.machine.total_procs(), 2);
    EXPECT_EQ(degraded.machine.total_procs(), 1);
    // Losing a processor can never improve the optimum.
    EXPECT_GE(degraded.schedule.Latency(), full.schedule.Latency());
    EXPECT_GT(degraded.schedule.Latency(), 0);
  }
}

TEST(DegradedTableTest, HeuristicFallbackWhenBudgetExhausted) {
  auto spec = MakeSpec(0, /*regimes=*/1);
  const regime::RegimeSpace space(1, 1);
  const fault::HealthSpace hs(spec->machine, 1);
  regime::DegradedTableOptions options;
  options.solver.max_nodes = 1;  // guarantees budget exhaustion
  auto table = regime::DegradedScheduleTable::Precompute(space, hs, *spec,
                                                         options);
  // Precompute verifies every entry, so a successful return means the
  // heuristic stand-ins are legal schedules too.
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_GT(table->heuristic_entries(), 0u);

  regime::DegradedTableOptions strict = options;
  strict.allow_heuristic_fallback = false;
  EXPECT_FALSE(regime::DegradedScheduleTable::Precompute(space, hs, *spec,
                                                         strict)
                   .ok());
}

// ---- fault-tolerant manager --------------------------------------------------

TEST(FaultManagerTest, ProcFailureSwitchesToDegradedTable) {
  auto spec = MakeSpec(0, /*regimes=*/1);
  const regime::RegimeSpace space(1, 1);
  const fault::HealthSpace hs(spec->machine, 1);
  auto table = regime::DegradedScheduleTable::Precompute(space, hs, *spec);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  const Tick fail_at = ticks::FromMillis(100);
  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::ProcFailStop(fail_at, ProcId(1))}, spec->machine);
  ASSERT_TRUE(plan.ok());

  regime::FaultRunOptions options;
  options.horizon = ticks::FromSeconds(1);
  options.fault_detection_latency = ticks::FromMillis(5);
  const regime::StateTimeline timeline(1, {});

  regime::FaultTolerantManager manager(space, *table);
  auto run = manager.Replay(timeline, *plan, options);

  ASSERT_EQ(run.recoveries.size(), 1u);
  const regime::RecoveryRecord& rec = run.recoveries[0];
  EXPECT_EQ(rec.at, fail_at);
  EXPECT_EQ(rec.detected_at, fail_at + options.fault_detection_latency);
  EXPECT_EQ(rec.from_health, fault::HealthSpace::FullHealth());
  EXPECT_EQ(rec.to_health, HealthId(1));
  EXPECT_EQ(run.final_health, HealthId(1));
  EXPECT_EQ(run.frames_lost_to_faults, rec.frames_lost);

  // Recovery latency: detection window + at most one initiation interval of
  // the pre-fault schedule + the table lookup.
  const regime::DegradedEntry& full =
      table->Get(kR0, fault::HealthSpace::FullHealth());
  const Tick ii = std::max<Tick>(1, full.schedule.initiation_interval);
  EXPECT_GE(rec.recovery_latency, options.fault_detection_latency);
  EXPECT_LE(rec.recovery_latency,
            options.fault_detection_latency + ii + options.lookup_cost);

  // Frames released after recovery run under the degraded schedule.
  const regime::DegradedEntry& degraded = table->Get(kR0, HealthId(1));
  ASSERT_FALSE(run.frames.empty());
  const sim::FrameRecord& last = run.frames.back();
  ASSERT_TRUE(last.completed());
  EXPECT_EQ(last.Latency(), degraded.schedule.Latency());
  EXPECT_GT(run.metrics.frames_completed, 0u);
}

TEST(FaultManagerTest, SlowdownInflatesLatencyWithoutTableSwitch) {
  auto spec = MakeSpec(0, /*regimes=*/1);
  const regime::RegimeSpace space(1, 1);
  const fault::HealthSpace hs(spec->machine, 1);
  auto table = regime::DegradedScheduleTable::Precompute(space, hs, *spec);
  ASSERT_TRUE(table.ok());

  auto plan = fault::FaultPlan::Create(
      {fault::FaultEvent::TransientSlowdown(ticks::FromMillis(10), ProcId(0),
                                            ticks::FromMillis(50), 3.0)},
      spec->machine);
  ASSERT_TRUE(plan.ok());

  regime::FaultRunOptions options;
  options.horizon = ticks::FromMillis(200);
  const regime::StateTimeline timeline(1, {});
  regime::FaultTolerantManager manager(space, *table);
  auto run = manager.Replay(timeline, *plan, options);

  EXPECT_TRUE(run.recoveries.empty());
  EXPECT_EQ(run.final_health, fault::HealthSpace::FullHealth());
  const Tick base = table->Get(kR0, fault::HealthSpace::FullHealth())
                        .schedule.Latency();
  bool saw_inflated = false;
  bool saw_base = false;
  for (const sim::FrameRecord& f : run.frames) {
    if (!f.completed()) continue;
    if (f.Latency() > base) saw_inflated = true;
    if (f.Latency() == base) saw_base = true;
  }
  EXPECT_TRUE(saw_inflated);
  EXPECT_TRUE(saw_base);
}

// ---- resilient service paths -------------------------------------------------

service::ServiceOptions ServiceOpts(int workers) {
  service::ServiceOptions options;
  options.workers = workers;
  return options;
}

TEST(ResilientServiceTest, RetriesTransientFailures) {
  service::ServiceOptions options = ServiceOpts(1);
  options.max_solve_retries = 3;
  options.retry_backoff = ticks::FromMicros(200);
  std::atomic<int> attempts{0};
  options.solve_fault_injector = [&](const graph::Fingerprint&,
                                     int attempt) -> Status {
    attempts.fetch_add(1);
    if (attempt < 2) return InternalError("injected transient blip");
    return OkStatus();
  };
  service::ScheduleService service(options);

  service::SolveRequest request;
  request.problem = MakeSpec(1);
  auto result = service.Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->quality, sched::ScheduleQuality::kOptimal);
  EXPECT_EQ(attempts.load(), 3);

  auto stats = service.Stats();
  EXPECT_EQ(stats.retried, 2u);
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.solve_failures, 0u);
}

TEST(ResilientServiceTest, SurfacesErrorWhenRetriesExhausted) {
  service::ServiceOptions options = ServiceOpts(1);
  options.max_solve_retries = 2;
  options.retry_backoff = ticks::FromMicros(100);
  options.solve_fault_injector = [](const graph::Fingerprint&, int) {
    return InternalError("persistent failure");
  };
  service::ScheduleService service(options);

  service::SolveRequest request;
  request.problem = MakeSpec(2);
  auto result = service.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);

  auto stats = service.Stats();
  EXPECT_EQ(stats.retried, 2u);
  EXPECT_EQ(stats.solve_failures, 1u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(ResilientServiceTest, DegradesToHeuristicOnPersistentFailure) {
  service::ServiceOptions options = ServiceOpts(1);
  options.max_solve_retries = 1;
  options.retry_backoff = ticks::FromMicros(100);
  options.solve_fault_injector = [](const graph::Fingerprint&, int) {
    return InternalError("solver is on fire");
  };
  service::ScheduleService service(options);

  service::SolveRequest request;
  request.problem = MakeSpec(3);
  request.allow_degraded = true;
  auto result = service.Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->quality, sched::ScheduleQuality::kHeuristic);
  EXPECT_GT((*result)->schedule.Latency(), 0);

  auto stats = service.Stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.solve_failures, 0u);
  // Heuristic results are never cached: the optimum is still owed.
  EXPECT_EQ(service.cache().Lookup(
                service::ScheduleService::RequestKey(request)),
            nullptr);
}

TEST(ResilientServiceTest, PastDeadlineServedHeuristicWhenDegradable) {
  service::ScheduleService service(ServiceOpts(1));

  service::SolveRequest request;
  request.problem = MakeSpec(4);
  request.allow_degraded = true;
  request.deadline = WallNow() - ticks::FromMillis(1);  // already expired
  auto submitted = service.SubmitAsync(request);
  ASSERT_TRUE(submitted.ok());
  auto result = submitted->get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->quality, sched::ScheduleQuality::kHeuristic);

  auto stats = service.Stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(service.cache().Lookup(
                service::ScheduleService::RequestKey(request)),
            nullptr);
}

TEST(ResilientServiceTest, WatchdogCancelsStuckSolve) {
  // A fork-join with a wide middle layer makes the branch-and-bound search
  // long enough that the (immediately expired) watchdog always wins the
  // race; the request still gets an answer via graceful degradation.
  Rng rng(42);
  graph::SyntheticProblem dag = graph::MakeForkJoin(rng, 6);
  auto spec = std::make_shared<graph::ProblemSpec>();
  spec->graph = dag.graph;
  spec->costs = dag.costs;
  spec->machine = MachineConfig::SingleNode(4);
  spec->comm = graph::CommModel::Free();
  spec->regime_count = 1;

  service::ServiceOptions options = ServiceOpts(1);
  options.solver_watchdog = 0;  // cancel every solve as soon as it starts
  service::ScheduleService service(options);

  service::SolveRequest request;
  request.problem = spec;
  request.allow_degraded = true;
  auto result = service.Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->quality, sched::ScheduleQuality::kHeuristic);

  auto stats = service.Stats();
  EXPECT_GE(stats.watchdog_cancellations, 1u);
  EXPECT_EQ(service.cache().Lookup(
                service::ScheduleService::RequestKey(request)),
            nullptr);
}

TEST(ResilientServiceTest, SnapshotSaveFailureIsTypedAndCounted) {
  service::ServiceOptions options = ServiceOpts(0);
  options.snapshot_path = "/nonexistent-dir-for-sscache/cache.sscache";
  service::ScheduleService service(options);
  service.Shutdown();
  EXPECT_EQ(service.Stats().snapshot_io_errors, 1u);
}

// ---- crash-safe snapshots ----------------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

class SnapshotCrashSafetyTest : public ::testing::Test {
 protected:
  SnapshotCrashSafetyTest()
      : path_(::testing::TempDir() + "fault_test_snapshot.sscache") {
    std::remove(path_.c_str());
    service::ServiceOptions options;
    options.workers = 1;
    options.snapshot_path = path_;
    service::ScheduleService service(options);
    service::SolveRequest request;
    request.problem = MakeSpec(9);
    auto solved = service.Solve(request);
    EXPECT_TRUE(solved.ok());
    service.Shutdown();  // writes the snapshot
  }

  ~SnapshotCrashSafetyTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(SnapshotCrashSafetyTest, WritesV3WithCrcFooterAndReloads) {
  const std::string content = ReadFileOrDie(path_);
  EXPECT_EQ(content.rfind("sscache 3", 0), 0u) << content.substr(0, 32);
  const std::size_t footer = content.rfind("crc ");
  ASSERT_NE(footer, std::string::npos);
  EXPECT_TRUE(footer == 0 || content[footer - 1] == '\n');

  service::ScheduleCache cache;
  ASSERT_TRUE(cache.Load(path_).ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(SnapshotCrashSafetyTest, TornSnapshotRejectedWholesale) {
  const std::string content = ReadFileOrDie(path_);
  ASSERT_GT(content.size(), 16u);
  WriteFileOrDie(path_, content.substr(0, content.size() - 10));

  service::ScheduleCache cache;
  Status loaded = cache.Load(path_);
  EXPECT_EQ(loaded.code(), StatusCode::kCorruptArtifact)
      << loaded.ToString();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(SnapshotCrashSafetyTest, TamperedSnapshotRejectedByChecksum) {
  std::string content = ReadFileOrDie(path_);
  ASSERT_GT(content.size(), 32u);
  std::size_t mid = content.size() / 2;
  content[mid] = content[mid] == '7' ? '8' : '7';
  WriteFileOrDie(path_, content);

  service::ScheduleCache cache;
  Status loaded = cache.Load(path_);
  EXPECT_EQ(loaded.code(), StatusCode::kCorruptArtifact)
      << loaded.ToString();
  EXPECT_EQ(cache.size(), 0u);
}

// ---- property sweep ----------------------------------------------------------

TEST(FaultPropertyTest, RandomSingleProcFailuresRecoverWithBoundedLoss) {
  // For random problems and random single-processor fail-stops: a degraded
  // schedule always exists, passes the verifier (Precompute verifies every
  // entry), and recovery loses a bounded number of frames.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 7919);
    graph::SyntheticOptions gen;
    gen.layers = 2;
    gen.max_width = 2;
    graph::SyntheticProblem dag = graph::MakeLayered(rng, gen);

    graph::ProblemSpec spec;
    spec.graph = dag.graph;
    spec.costs = dag.costs;
    spec.machine = MachineConfig::Cluster(2, 2);
    spec.comm = graph::CommModel::Free();
    spec.regime_count = 1;

    const regime::RegimeSpace space(0, 0);
    const fault::HealthSpace hs(spec.machine, /*max_proc_failures=*/1);
    regime::DegradedTableOptions table_options;
    table_options.solver.max_nodes = 200'000;
    auto table = regime::DegradedScheduleTable::Precompute(space, hs, spec,
                                                           table_options);
    ASSERT_TRUE(table.ok()) << table.status().ToString();

    const Tick fail_at = static_cast<Tick>(
        rng.NextInRange(ticks::FromMillis(5), ticks::FromMillis(60)));
    const ProcId victim(static_cast<int>(rng.NextBelow(
        static_cast<std::uint64_t>(spec.machine.total_procs()))));
    auto plan = fault::FaultPlan::Create(
        {fault::FaultEvent::ProcFailStop(fail_at, victim)}, spec.machine);
    ASSERT_TRUE(plan.ok());

    regime::FaultRunOptions options;
    options.horizon = ticks::FromMillis(200);
    options.fault_detection_latency = ticks::FromMillis(2);
    const regime::StateTimeline timeline(0, {});
    regime::FaultTolerantManager manager(space, *table);
    auto run = manager.Replay(timeline, *plan, options);

    ASSERT_EQ(run.recoveries.size(), 1u);
    const regime::RecoveryRecord& rec = run.recoveries[0];
    EXPECT_EQ(rec.to_health, hs.FromHealth(plan->HealthAt(fail_at)));

    // Frames lost = frames in flight at injection plus frames released in
    // the detection blind window, both paced by the initiation interval.
    const regime::DegradedEntry& full =
        table->Get(RegimeId(0), fault::HealthSpace::FullHealth());
    const Tick ii = std::max<Tick>(1, full.schedule.initiation_interval);
    const std::size_t bound = static_cast<std::size_t>(
        (full.schedule.Latency() + options.fault_detection_latency) / ii + 3);
    EXPECT_LE(rec.frames_lost, bound)
        << "latency " << full.schedule.Latency() << " ii " << ii;
    EXPECT_GT(run.metrics.frames_completed, 0u);

    // The degraded mode's schedule is present and runnable.
    const regime::DegradedEntry& degraded =
        table->Get(RegimeId(0), rec.to_health);
    EXPECT_GT(degraded.schedule.Latency(), 0);
    EXPECT_LE(degraded.machine.total_procs(),
              plan->HealthAt(fail_at).surviving_procs());
  }
}

}  // namespace
}  // namespace ss
