// Tests for the task graph, machine model, cost models and op-graph
// expansion.
#include <gtest/gtest.h>

#include "graph/cost_model.hpp"
#include "graph/machine.hpp"
#include "graph/op_graph.hpp"
#include "graph/task_graph.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::graph {
namespace {

constexpr RegimeId kR0 = RegimeId(0);

// ---- machine -----------------------------------------------------------------

TEST(MachineTest, SingleNode) {
  MachineConfig m = MachineConfig::SingleNode(4);
  EXPECT_EQ(m.total_procs(), 4);
  EXPECT_EQ(m.NodeOfProc(ProcId(3)), NodeId(0));
  EXPECT_TRUE(m.SameNode(ProcId(0), ProcId(3)));
}

TEST(MachineTest, Cluster) {
  MachineConfig m = MachineConfig::Cluster(4, 4);  // the paper's platform
  EXPECT_EQ(m.total_procs(), 16);
  EXPECT_EQ(m.NodeOfProc(ProcId(0)), NodeId(0));
  EXPECT_EQ(m.NodeOfProc(ProcId(7)), NodeId(1));
  EXPECT_FALSE(m.SameNode(ProcId(3), ProcId(4)));
  EXPECT_EQ(m.FirstProcOf(NodeId(2)), ProcId(8));
  EXPECT_FALSE(m.ToString().empty());
}

// ---- comm model ---------------------------------------------------------------

TEST(CommModelTest, IntraVsInter) {
  CommModel comm;
  comm.intra_latency = 1;
  comm.intra_bytes_per_us = 1000;
  comm.inter_latency = 50;
  comm.inter_bytes_per_us = 100;
  EXPECT_EQ(comm.Cost(10000, /*same_node=*/true), 1 + 10);
  EXPECT_EQ(comm.Cost(10000, /*same_node=*/false), 50 + 100);
}

TEST(CommModelTest, FreeModelIsZero) {
  CommModel comm = CommModel::Free();
  EXPECT_EQ(comm.Cost(1 << 20, true), 0);
  EXPECT_EQ(comm.Cost(1 << 20, false), 0);
}

// ---- task graph ----------------------------------------------------------------

class GraphFixture : public ::testing::Test {
 protected:
  GraphFixture() {
    src_ = g_.AddTask("src", true);
    mid_ = g_.AddTask("mid");
    sink_ = g_.AddTask("sink");
    c0_ = g_.AddChannel("c0", 100);
    c1_ = g_.AddChannel("c1", 200);
    g_.SetProducer(src_, c0_);
    g_.AddConsumer(mid_, c0_);
    g_.SetProducer(mid_, c1_);
    g_.AddConsumer(sink_, c1_);
  }
  TaskGraph g_;
  TaskId src_, mid_, sink_;
  ChannelId c0_, c1_;
};

TEST_F(GraphFixture, Lookups) {
  EXPECT_EQ(g_.task_count(), 3u);
  EXPECT_EQ(g_.channel_count(), 2u);
  EXPECT_EQ(g_.FindTask("mid"), mid_);
  EXPECT_EQ(g_.FindChannel("c1"), c1_);
  EXPECT_FALSE(g_.FindTask("nope").valid());
  EXPECT_FALSE(g_.FindChannel("nope").valid());
}

TEST_F(GraphFixture, ProducersAndConsumers) {
  EXPECT_EQ(g_.producer(c0_), src_);
  ASSERT_EQ(g_.consumers(c0_).size(), 1u);
  EXPECT_EQ(g_.consumers(c0_)[0], mid_);
  EXPECT_EQ(g_.outputs(src_).size(), 1u);
  EXPECT_EQ(g_.inputs(mid_).size(), 1u);
}

TEST_F(GraphFixture, PredsAndSuccs) {
  EXPECT_TRUE(g_.Predecessors(src_).empty());
  ASSERT_EQ(g_.Successors(src_).size(), 1u);
  EXPECT_EQ(g_.Successors(src_)[0], mid_);
  ASSERT_EQ(g_.Predecessors(sink_).size(), 1u);
  EXPECT_EQ(g_.Predecessors(sink_)[0], mid_);
}

TEST_F(GraphFixture, ChannelsBetween) {
  auto between = g_.ChannelsBetween(src_, mid_);
  ASSERT_EQ(between.size(), 1u);
  EXPECT_EQ(between[0], c0_);
  EXPECT_TRUE(g_.ChannelsBetween(src_, sink_).empty());
}

TEST_F(GraphFixture, TopologicalOrder) {
  auto order = g_.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 3u);
  EXPECT_EQ((*order)[0], src_);
  EXPECT_EQ((*order)[1], mid_);
  EXPECT_EQ((*order)[2], sink_);
  EXPECT_TRUE(g_.IsDag());
}

TEST_F(GraphFixture, SourcesAndSinks) {
  ASSERT_EQ(g_.SourceTasks().size(), 1u);
  EXPECT_EQ(g_.SourceTasks()[0], src_);
  ASSERT_EQ(g_.SinkTasks().size(), 1u);
  EXPECT_EQ(g_.SinkTasks()[0], sink_);
}

TEST_F(GraphFixture, ValidatePasses) { EXPECT_TRUE(g_.Validate().ok()); }

TEST_F(GraphFixture, RenderingsMentionEveryTask) {
  const std::string dot = g_.ToDot();
  const std::string text = g_.ToText();
  for (const char* name : {"src", "mid", "sink"}) {
    EXPECT_NE(dot.find(name), std::string::npos);
    EXPECT_NE(text.find(name), std::string::npos);
  }
}

TEST(GraphValidationTest, CycleDetected) {
  TaskGraph g;
  TaskId a = g.AddTask("a", true);
  TaskId b = g.AddTask("b");
  ChannelId ab = g.AddChannel("ab", 0);
  ChannelId ba = g.AddChannel("ba", 0);
  g.SetProducer(a, ab);
  g.AddConsumer(b, ab);
  g.SetProducer(b, ba);
  g.AddConsumer(a, ba);
  EXPECT_FALSE(g.IsDag());
  EXPECT_FALSE(g.Validate().ok());
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(GraphValidationTest, ChannelWithoutProducerFails) {
  TaskGraph g;
  TaskId a = g.AddTask("a", true);
  ChannelId c = g.AddChannel("c", 0);
  g.AddConsumer(a, c);
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphValidationTest, NonSourceWithoutInputsFails) {
  TaskGraph g;
  g.AddTask("floating");  // not a source, no inputs
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphValidationTest, EmptyGraphFails) {
  TaskGraph g;
  EXPECT_FALSE(g.Validate().ok());
}

// ---- cost model -----------------------------------------------------------------

TEST(CostModelTest, SetAndGet) {
  CostModel cm;
  cm.Set(kR0, TaskId(0), TaskCost::Serial(100));
  ASSERT_TRUE(cm.Has(kR0, TaskId(0)));
  EXPECT_EQ(cm.Get(kR0, TaskId(0)).serial_cost(), 100);
  EXPECT_FALSE(cm.Has(kR0, TaskId(1)));
  EXPECT_FALSE(cm.Has(RegimeId(1), TaskId(0)));
}

TEST(CostModelTest, ValidateChecksDensity) {
  CostModel cm;
  cm.Set(kR0, TaskId(0), TaskCost::Serial(100));
  EXPECT_TRUE(cm.Validate(1).ok());
  EXPECT_FALSE(cm.Validate(2).ok());
}

TEST(CostModelTest, VariantAccounting) {
  DpVariant v{"x4", 4, 100, 5, 7};
  EXPECT_EQ(v.SerializedCost(), 5 + 400 + 7);
  EXPECT_EQ(v.CriticalPathCost(), 5 + 100 + 7);
  TaskCost tc = TaskCost::Serial(400);
  tc.AddVariant(v);
  EXPECT_EQ(tc.variant_count(), 2u);
  EXPECT_EQ(tc.variant(VariantId(1)).chunks, 4);
}

// ---- op graph -------------------------------------------------------------------

TEST(OpGraphTest, SerialExpansionIsOneOpPerTask) {
  TaskGraph g;
  TaskId a = g.AddTask("a", true);
  TaskId b = g.AddTask("b");
  ChannelId c = g.AddChannel("c", 64);
  g.SetProducer(a, c);
  g.AddConsumer(b, c);
  CostModel cm;
  cm.Set(kR0, a, TaskCost::Serial(10));
  cm.Set(kR0, b, TaskCost::Serial(20));

  OpGraph og = OpGraph::Expand(g, cm, kR0, {VariantId(0), VariantId(0)});
  EXPECT_EQ(og.op_count(), 2u);
  EXPECT_EQ(og.TotalWork(), 30);
  EXPECT_EQ(og.CriticalPath(), 30);
  EXPECT_EQ(og.EdgeBytes(0, 1), 64u);
  EXPECT_EQ(og.TaskEntry(a), og.TaskExit(a));
}

TEST(OpGraphTest, ChunkedExpansionAddsSplitJoin) {
  TaskGraph g;
  TaskId a = g.AddTask("a", true);
  TaskId b = g.AddTask("b");
  ChannelId c = g.AddChannel("c", 100);
  g.SetProducer(a, c);
  g.AddConsumer(b, c);
  CostModel cm;
  cm.Set(kR0, a, TaskCost::Serial(10));
  TaskCost bc = TaskCost::Serial(400);
  bc.AddVariant(DpVariant{"x4", 4, 100, 5, 7});
  cm.Set(kR0, b, bc);

  OpGraph og = OpGraph::Expand(g, cm, kR0, {VariantId(0), VariantId(1)});
  // a + split + 4 chunks + join = 7 ops.
  EXPECT_EQ(og.op_count(), 7u);
  EXPECT_EQ(og.TotalWork(), 10 + 5 + 400 + 7);
  EXPECT_EQ(og.CriticalPath(), 10 + 5 + 100 + 7);
  // Split and join sandwich the chunks.
  const int entry = og.TaskEntry(b);
  const int exit = og.TaskExit(b);
  EXPECT_EQ(og.op(entry).kind, OpKind::kSplit);
  EXPECT_EQ(og.op(exit).kind, OpKind::kJoin);
  EXPECT_EQ(og.succs(entry).size(), 4u);
  EXPECT_EQ(og.preds(exit).size(), 4u);
  // The cross-task edge lands on the split op.
  EXPECT_EQ(og.EdgeBytes(og.TaskExit(a), entry), 100u);
}

TEST(OpGraphTest, TailLengthsDecreaseDownstream) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  CostModel cm;
  for (std::size_t t = 0; t < tg.graph.task_count(); ++t) {
    cm.Set(kR0, TaskId(static_cast<TaskId::underlying_type>(t)),
           TaskCost::Serial(100));
  }
  std::vector<VariantId> variants(tg.graph.task_count(), VariantId(0));
  OpGraph og = OpGraph::Expand(tg.graph, cm, kR0, variants);
  auto tails = og.TailLengths();
  // The source's tail is the whole critical path.
  EXPECT_EQ(tails[static_cast<std::size_t>(og.TaskEntry(tg.digitizer))],
            og.CriticalPath());
  // A sink's tail is its own cost.
  EXPECT_EQ(tails[static_cast<std::size_t>(og.TaskExit(tg.peak_detection))],
            100);
}

TEST(OpGraphTest, TrackerGraphShape) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  EXPECT_TRUE(tg.graph.Validate().ok());
  EXPECT_EQ(tg.graph.task_count(), 5u);
  EXPECT_EQ(tg.graph.channel_count(), 5u);
  // T4 consumes three channels in the documented order.
  const auto& inputs = tg.graph.inputs(tg.target_detection);
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[0], tg.frame_ch);
  EXPECT_EQ(inputs[1], tg.color_model_ch);
  EXPECT_EQ(inputs[2], tg.motion_mask_ch);
  // T2 and T3 are parallel siblings (the paper's task parallelism).
  auto succs = tg.graph.Successors(tg.digitizer);
  EXPECT_EQ(succs.size(), 3u);  // histogram, change detection, T4
}

}  // namespace
}  // namespace ss::graph
