// Tests for the .ssg problem-description format: tick parsing, whole-file
// parsing, error reporting with line numbers, and round-tripping.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "graph/fingerprint.hpp"
#include "graph/graph_io.hpp"
#include "graph/synthetic.hpp"
#include "sched/optimal.hpp"

namespace ss::graph {
namespace {

const char kValidProblem[] = R"(
# demo
machine nodes=2 procs_per_node=4
comm intra_latency=20us intra_bandwidth=4000 inter_latency=30ms inter_bandwidth=100

task src source
task heavy
task sink

channel a bytes=1000 producer=src consumers=heavy
channel b bytes=500 producer=heavy consumers=sink
channel out bytes=64 producer=sink

regimes 2
cost regime=0 task=src serial=1ms
cost regime=0 task=heavy serial=100ms
variant regime=0 task=heavy name=x4 chunks=4 chunk=26ms split=1ms join=1ms
cost regime=0 task=sink serial=5ms
cost regime=1 task=src serial=1ms
cost regime=1 task=heavy serial=400ms
cost regime=1 task=sink serial=5ms
)";

TEST(ParseTickTest, UnitsAndDefaults) {
  EXPECT_EQ(*ParseTickValue("250"), 250);
  EXPECT_EQ(*ParseTickValue("30us"), 30);
  EXPECT_EQ(*ParseTickValue("12.5ms"), 12'500);
  EXPECT_EQ(*ParseTickValue("3.2s"), 3'200'000);
  EXPECT_EQ(*ParseTickValue("0"), 0);
}

TEST(ParseTickTest, Errors) {
  EXPECT_FALSE(ParseTickValue("abc").ok());
  EXPECT_FALSE(ParseTickValue("-5ms").ok());
  EXPECT_FALSE(ParseTickValue("3x").ok());
  EXPECT_FALSE(ParseTickValue("").ok());
}

TEST(ParseProblemTest, ParsesValidFile) {
  auto spec = ParseProblem(kValidProblem);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph.task_count(), 3u);
  EXPECT_EQ(spec->graph.channel_count(), 3u);
  EXPECT_EQ(spec->machine.nodes, 2);
  EXPECT_EQ(spec->machine.procs_per_node, 4);
  EXPECT_EQ(spec->comm.inter_latency, 30'000);
  EXPECT_EQ(spec->regime_count, 2u);
  const TaskId heavy = spec->graph.FindTask("heavy");
  ASSERT_TRUE(heavy.valid());
  EXPECT_EQ(spec->costs.Get(RegimeId(0), heavy).variant_count(), 2u);
  EXPECT_EQ(spec->costs.Get(RegimeId(1), heavy).variant_count(), 1u);
  EXPECT_EQ(spec->costs.Get(RegimeId(1), heavy).serial_cost(), 400'000);
  EXPECT_TRUE(spec->graph.task(spec->graph.FindTask("src")).is_source);
}

TEST(ParseProblemTest, ParsedProblemSchedules) {
  auto spec = ParseProblem(kValidProblem);
  ASSERT_TRUE(spec.ok());
  sched::OptimalScheduler scheduler(spec->graph, spec->costs, spec->comm,
                                    spec->machine);
  auto result = scheduler.Schedule(RegimeId(0));
  ASSERT_TRUE(result.ok());
  // The 4-chunk variant should win on a 4-proc node: 1 + (1+26+1) + 5 ms,
  // plus a few tens of microseconds of intra-node communication.
  EXPECT_GE(result->min_latency, 1'000 + 28'000 + 5'000);
  EXPECT_LE(result->min_latency, 1'000 + 28'000 + 5'000 + 200);
}

struct BadInput {
  const char* name;
  const char* text;
  const char* expect_substring;
};

class ParseErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParseErrors, ReportsLineAndReason) {
  auto spec = ParseProblem(GetParam().text);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().ToString().find(GetParam().expect_substring),
            std::string::npos)
      << spec.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseErrors,
    ::testing::Values(
        BadInput{"unknown_directive", "bogus x=1\n", "unknown directive"},
        BadInput{"unknown_task_in_channel",
                 "task a source\nchannel c bytes=1 producer=zzz\n",
                 "unknown producer task"},
        BadInput{"duplicate_task", "task a source\ntask a\n",
                 "duplicate task"},
        BadInput{"bad_number", "machine nodes=abc\n", "bad machine value"},
        BadInput{"variant_before_cost",
                 "task a source\nchannel c bytes=1 producer=a\n"
                 "variant regime=0 task=a chunks=2 chunk=1ms\n",
                 "variant before cost"},
        BadInput{"regime_out_of_range",
                 "task a source\nchannel c bytes=1 producer=a\n"
                 "cost regime=3 task=a serial=1ms\n",
                 "regime index out of range"},
        BadInput{"missing_costs",
                 "task a source\ntask b\nchannel c bytes=1 producer=a "
                 "consumers=b\ncost regime=0 task=a serial=1ms\n",
                 "missing task"},
        BadInput{"cycle",
                 "task a source\ntask b\n"
                 "channel c1 bytes=1 producer=a consumers=b\n"
                 "channel c2 bytes=1 producer=b consumers=a\n"
                 "cost regime=0 task=a serial=1ms\n"
                 "cost regime=0 task=b serial=1ms\n",
                 "cycle"}),
    [](const auto& param_info) {
      return std::string(param_info.param.name);
    });

TEST(FormatProblemTest, RoundTrips) {
  auto spec = ParseProblem(kValidProblem);
  ASSERT_TRUE(spec.ok());
  std::string text = FormatProblem(*spec);
  auto reparsed = ParseProblem(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed->graph.task_count(), spec->graph.task_count());
  EXPECT_EQ(reparsed->graph.channel_count(), spec->graph.channel_count());
  EXPECT_EQ(reparsed->regime_count, spec->regime_count);
  // Costs survive.
  const TaskId heavy = reparsed->graph.FindTask("heavy");
  EXPECT_EQ(reparsed->costs.Get(RegimeId(0), heavy).serial_cost(), 100'000);
  EXPECT_EQ(reparsed->costs.Get(RegimeId(0), heavy).variant_count(), 2u);
  // And schedule to the same optimum.
  sched::OptimalScheduler a(spec->graph, spec->costs, spec->comm,
                            spec->machine);
  sched::OptimalScheduler b(reparsed->graph, reparsed->costs,
                            reparsed->comm, reparsed->machine);
  auto ra = a.Schedule(RegimeId(0));
  auto rb = b.Schedule(RegimeId(0));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->min_latency, rb->min_latency);
}

TEST(FormatProblemTest, RoundTripIsFingerprintIdentical) {
  // Write(Read(spec)) must describe the same canonical problem: the
  // fingerprint (which the schedule cache keys on) has to survive the trip
  // exactly, or on-disk snapshots would go stale after a reformat.
  auto check = [](const ProblemSpec& spec, const std::string& label) {
    const Fingerprint before(spec);
    auto reparsed = ParseProblem(FormatProblem(spec));
    ASSERT_TRUE(reparsed.ok())
        << label << ": " << reparsed.status().ToString();
    EXPECT_EQ(before, Fingerprint(*reparsed))
        << label << ": " << before.ToHex() << " vs "
        << Fingerprint(*reparsed).ToHex();
  };

  auto inline_spec = ParseProblem(kValidProblem);
  ASSERT_TRUE(inline_spec.ok());
  check(*inline_spec, "kValidProblem");

  // Every .ssg file the repository ships (ctest may run from the build
  // directory or its parent).
  bool found_example = false;
  for (const char* path :
       {"examples/data/video_pipeline.ssg",
        "../examples/data/video_pipeline.ssg",
        "../../examples/data/video_pipeline.ssg"}) {
    auto spec = LoadProblemFile(path);
    if (!spec.ok()) continue;
    found_example = true;
    check(*spec, path);
  }
  EXPECT_TRUE(found_example)
      << "examples/data/video_pipeline.ssg not reachable from test cwd";

  // Synthetic families: chains, fork-joins, layered DAGs across seeds.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 7919);
    for (SyntheticProblem p :
         {MakeChain(rng, 4), MakeForkJoin(rng, 3), MakeLayered(rng)}) {
      ProblemSpec spec;
      spec.graph = std::move(p.graph);
      spec.costs = std::move(p.costs);
      spec.machine = MachineConfig::SingleNode(4);
      spec.regime_count = 1;
      check(spec, p.family + " seed " + std::to_string(seed));
    }
  }
}

TEST(LoadProblemFileTest, MissingFileFails) {
  auto spec = LoadProblemFile("/nonexistent/path.ssg");
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(LoadProblemFileTest, LoadsExampleFile) {
  // The repository ships an example problem; resolve it relative to the
  // source tree (ctest runs from the build directory).
  for (const char* path :
       {"examples/data/video_pipeline.ssg",
        "../examples/data/video_pipeline.ssg",
        "../../examples/data/video_pipeline.ssg"}) {
    auto spec = LoadProblemFile(path);
    if (!spec.ok()) continue;
    EXPECT_EQ(spec->graph.task_count(), 4u);
    EXPECT_EQ(spec->regime_count, 2u);
    sched::OptimalScheduler scheduler(spec->graph, spec->costs, spec->comm,
                                      spec->machine);
    auto r0 = scheduler.Schedule(RegimeId(0));
    auto r1 = scheduler.Schedule(RegimeId(1));
    ASSERT_TRUE(r0.ok());
    ASSERT_TRUE(r1.ok());
    EXPECT_LT(r0->min_latency, r1->min_latency);
    return;
  }
  GTEST_SKIP() << "example file not found from test working directory";
}

}  // namespace
}  // namespace ss::graph
