// Tests for the extended kiosk graph (tracker + T6 DECface behavior):
// structure, costs, and schedulability of the six-task graph.
#include <gtest/gtest.h>

#include <set>

#include "regime/regime.hpp"
#include "regime/schedule_table.hpp"
#include "runtime/regime_runner.hpp"
#include "sched/optimal.hpp"
#include "stm/channel.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::tracker {
namespace {

TEST(KioskGraphTest, StructureExtendsTracker) {
  KioskGraph kg = BuildKioskGraph();
  EXPECT_TRUE(kg.tracker.graph.Validate().ok());
  EXPECT_EQ(kg.tracker.graph.task_count(), 6u);
  EXPECT_EQ(kg.tracker.graph.channel_count(), 6u);
  // T6 consumes model locations; the gaze channel ends the graph.
  const auto& consumers =
      kg.tracker.graph.consumers(kg.tracker.locations_ch);
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0], kg.behavior);
  auto sinks = kg.tracker.graph.SinkTasks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0], kg.behavior);
}

TEST(KioskGraphTest, CostsCoverT6) {
  KioskGraph kg = BuildKioskGraph();
  regime::RegimeSpace space(1, 8);
  graph::CostModel cm = PaperKioskCostModel(kg, space);
  EXPECT_TRUE(cm.Validate(kg.tracker.graph.task_count()).ok());
  // T6 is linear in models.
  const Tick c1 = cm.Get(space.FromState(1), kg.behavior).serial_cost();
  const Tick c8 = cm.Get(space.FromState(8), kg.behavior).serial_cost();
  EXPECT_EQ(c8, 8 * c1);
}

TEST(KioskGraphTest, SixTaskGraphSchedulesTractably) {
  KioskGraph kg = BuildKioskGraph();
  regime::RegimeSpace space(1, 8);
  PaperCostParams pcp;
  pcp.scale = 0.001;
  graph::CostModel cm = PaperKioskCostModel(kg, space, pcp);
  sched::OptimalScheduler scheduler(kg.tracker.graph, cm,
                                    graph::CommModel(),
                                    graph::MachineConfig::SingleNode(4));
  for (RegimeId r : space.AllRegimes()) {
    auto result = scheduler.Schedule(r);
    ASSERT_TRUE(result.ok()) << r.value();
    EXPECT_FALSE(result->budget_exhausted) << r.value();
    EXPECT_GT(result->min_latency, 0);
  }
}

TEST(KioskGraphTest, BehaviorLengthensLatencyByItsCost) {
  // Adding T6 to the critical path lengthens the minimal latency by exactly
  // T6's cost (it serially follows the previous sink T5).
  TrackerGraph tg = BuildTrackerGraph();
  KioskGraph kg = BuildKioskGraph();
  regime::RegimeSpace space(8, 8);
  PaperCostParams pcp;
  pcp.scale = 0.001;
  graph::CostModel tracker_costs = PaperCostModel(tg, space, pcp);
  graph::CostModel kiosk_costs = PaperKioskCostModel(kg, space, pcp);

  sched::OptimalScheduler a(tg.graph, tracker_costs, graph::CommModel(),
                            graph::MachineConfig::SingleNode(4));
  sched::OptimalScheduler b(kg.tracker.graph, kiosk_costs,
                            graph::CommModel(),
                            graph::MachineConfig::SingleNode(4));
  auto ra = a.Schedule(RegimeId(0));
  auto rb = b.Schedule(RegimeId(0));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  const Tick t6 =
      kiosk_costs.Get(RegimeId(0), kg.behavior).serial_cost();
  EXPECT_EQ(rb->min_latency, ra->min_latency + t6);
}

TEST(KioskGraphTest, ScheduleTableWorksOnKioskGraph) {
  KioskGraph kg = BuildKioskGraph();
  regime::RegimeSpace space(1, 4);
  PaperCostParams pcp;
  pcp.scale = 0.001;
  graph::CostModel cm = PaperKioskCostModel(kg, space, pcp);
  auto table = regime::ScheduleTable::Precompute(
      space, kg.tracker.graph, cm, graph::CommModel(),
      graph::MachineConfig::SingleNode(4));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 4u);
}

TEST(KioskGraphTest, BehaviorBodyGlancesAtEachCustomer) {
  BehaviorBody body(/*dwell_frames=*/2);
  DetectionSet det;
  det.detections = {{0, 10, 10, 1.f}, {1, 50, 50, 2.f}, {2, 90, 90, 3.f}};
  std::set<int> glanced;
  for (Timestamp ts = 0; ts < 12; ++ts) {
    runtime::TaskInputs in;
    in.ts = ts;
    det.ts = ts;
    in.items = {stm::Item{ts, stm::Payload::Make<DetectionSet>(det)}};
    runtime::TaskOutputs out;
    ASSERT_TRUE(body.Process(in, &out).ok());
    auto gaze = out.items.at(0).As<GazeTarget>();
    EXPECT_GE(gaze->model_id, 0);
    glanced.insert(gaze->model_id);
  }
  // Over 12 frames at dwell 2, all three customers were glanced at.
  EXPECT_EQ(glanced.size(), 3u);
}

TEST(KioskGraphTest, BehaviorBodyIdleWhenAlone) {
  BehaviorBody body;
  DetectionSet det;
  det.ts = 0;
  runtime::TaskInputs in;
  in.ts = 0;
  in.items = {stm::Item{0, stm::Payload::Make<DetectionSet>(det)}};
  runtime::TaskOutputs out;
  ASSERT_TRUE(body.Process(in, &out).ok());
  EXPECT_EQ(out.items.at(0).As<GazeTarget>()->model_id, -1);
}

TEST(KioskGraphTest, LiveKioskRunsWithRegimeSwitching) {
  // The full six-task kiosk, real threads, measured costs, a state change
  // mid-run: gazes must land for every frame.
  TrackerParams params;
  params.width = 64;
  params.height = 48;
  params.target_size = 10;
  KioskGraph kg = BuildKioskGraph(params, 4);
  regime::RegimeSpace space(1, 3);
  MeasureOptions mo;
  mo.repetitions = 1;
  mo.fp_options = {1, 2};
  // Tracker task ids are shared between the tracker and kiosk graphs, so
  // the measured tracker costs slot straight in; T6 is measured trivially.
  graph::CostModel costs =
      MeasureCostModel(kg.tracker, space, params, mo);
  for (RegimeId r : space.AllRegimes()) {
    costs.Set(r, kg.behavior, graph::TaskCost::Serial(50));
  }
  auto table = regime::ScheduleTable::Precompute(
      space, kg.tracker.graph, costs, graph::CommModel(),
      graph::MachineConfig::SingleNode(4));
  ASSERT_TRUE(table.ok());

  auto state = [](Timestamp ts) { return ts < 5 ? 1 : 3; };
  runtime::Application app(kg.tracker.graph);
  InstallKioskBodies(kg, params, state, 4, &app);
  ASSERT_TRUE(app.Materialize().ok());

  auto reconfigure = [&](RegimeId r, const regime::TableEntry& entry) {
    const auto& variant =
        costs.Get(r, kg.tracker.target_detection)
            .variant(entry.schedule.iteration
                         .variants()[kg.tracker.target_detection.index()]);
    int fp = 1, mp = 1;
    auto* body = dynamic_cast<TargetDetectionBody*>(
        app.body(kg.tracker.target_detection));
    if (std::sscanf(variant.name.c_str(), "FP=%dxMP=%d", &fp, &mp) == 2) {
      body->SetDecomposition(fp, mp);
    } else {
      body->SetDecomposition(1, 1);
    }
  };

  runtime::RegimeRunnerOptions opts;
  opts.frames = 10;
  runtime::RegimeSwitchingRunner runner(app, space, *table, state,
                                        reconfigure, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.frames_completed, 10u);
  ASSERT_EQ(result->switches.size(), 1u);

  // Every frame produced a gaze decision pointing at a real person.
  stm::Channel* gaze_ch = app.channel(kg.gaze_ch);
  ConnId conn = gaze_ch->Attach(stm::ConnDir::kInput);
  for (Timestamp ts = 0; ts < 10; ++ts) {
    auto item = gaze_ch->Get(conn, stm::TsQuery::Exact(ts),
                             stm::GetMode::kNonBlocking);
    ASSERT_TRUE(item.ok()) << "frame " << ts;
    auto gaze = item->payload.As<GazeTarget>();
    EXPECT_GE(gaze->model_id, 0) << "frame " << ts;
    EXPECT_LT(gaze->model_id, state(ts)) << "frame " << ts;
  }
}

}  // namespace
}  // namespace ss::tracker
