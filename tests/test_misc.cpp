// Coverage for the remaining small surfaces: logging levels, the blocking
// digitizer mode of the free runner, op-graph labels, and status macros.
#include <gtest/gtest.h>

#include "core/log.hpp"
#include "graph/op_graph.hpp"
#include "runtime/free_runner.hpp"
#include "sim/trace.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss {
namespace {

TEST(LogTest, LevelGateRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Filtered-out messages are swallowed without side effects.
  SS_LOG_DEBUG << "not shown " << 42;
  SS_LOG_INFO << "not shown";
  SetLogLevel(LogLevel::kOff);
  SS_LOG_ERROR << "not shown either";
  SetLogLevel(before);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return NotFoundError("x"); };
  auto wrapper = [&]() -> Status {
    SS_RETURN_IF_ERROR(fails());
    return OkStatus();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
  auto succeeds = []() -> Status { return OkStatus(); };
  auto wrapper2 = [&]() -> Status {
    SS_RETURN_IF_ERROR(succeeds());
    return InternalError("reached");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kInternal);
}

TEST(OpGraphTest, LabelsIdentifyKindAndChunk) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  regime::RegimeSpace space(8, 8);
  tracker::PaperCostParams pcp;
  pcp.scale = 0.001;
  graph::CostModel costs = tracker::PaperCostModel(tg, space, pcp);
  const auto& t4 = costs.Get(RegimeId(0), tg.target_detection);
  VariantId chunked(0);
  for (std::size_t v = 0; v < t4.variant_count(); ++v) {
    if (t4.variant(VariantId(static_cast<int>(v))).chunks > 1) {
      chunked = VariantId(static_cast<int>(v));
      break;
    }
  }
  ASSERT_TRUE(chunked.value() > 0);
  std::vector<VariantId> variants(tg.graph.task_count(), VariantId(0));
  variants[tg.target_detection.index()] = chunked;
  graph::OpGraph og =
      graph::OpGraph::Expand(tg.graph, costs, RegimeId(0), variants);
  bool saw_split = false, saw_chunk = false, saw_join = false;
  for (const auto& op : og.ops()) {
    if (op.kind == graph::OpKind::kSplit) {
      saw_split = true;
      EXPECT_NE(op.label.find(".split"), std::string::npos);
    }
    if (op.kind == graph::OpKind::kChunk) {
      saw_chunk = true;
      EXPECT_NE(op.label.find(".c"), std::string::npos);
    }
    if (op.kind == graph::OpKind::kJoin) {
      saw_join = true;
      EXPECT_NE(op.label.find(".join"), std::string::npos);
    }
    EXPECT_FALSE(std::string(graph::OpKindName(op.kind)).empty());
  }
  EXPECT_TRUE(saw_split && saw_chunk && saw_join);
}

TEST(FreeRunnerTest, BlockingDigitizerNeverDrops) {
  // drop_when_full = false: a full channel stalls the digitizer instead of
  // skipping the frame, so every frame completes even when saturated.
  tracker::TrackerParams params;
  params.width = 64;
  params.height = 48;
  params.target_size = 10;
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  runtime::AppOptions app_opts;
  app_opts.channel_capacity = 2;  // tight: forces back-pressure
  runtime::Application app(tg.graph, app_opts);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 2; }, 4,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  runtime::FreeRunOptions opts;
  opts.frames = 12;
  opts.drop_when_full = false;
  runtime::FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->timed_out);
  EXPECT_EQ(result->metrics.frames_dropped, 0u);
  EXPECT_EQ(result->metrics.frames_completed, 12u);
}

TEST(GanttTest, WindowedRendering) {
  sim::Trace t;
  t.Add({ProcId(0), 0, ticks::FromSeconds(1), "early", 0});
  t.Add({ProcId(0), ticks::FromSeconds(5), ticks::FromSeconds(6), "late",
         5});
  sim::GanttOptions opts;
  opts.row_ticks = ticks::FromMillis(500);
  opts.from = ticks::FromSeconds(4);
  opts.to = ticks::FromSeconds(7);
  std::string chart = sim::RenderGantt(t, 1, opts);
  EXPECT_EQ(chart.find("early"), std::string::npos);
  EXPECT_NE(chart.find("late"), std::string::npos);
}

}  // namespace
}  // namespace ss
