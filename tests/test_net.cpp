// Tests for the wire protocol and the epoll server: codec round-trips, the
// incremental frame decoder against malformed/partial input (satellite:
// fuzz-ish decoder coverage), end-to-end solve/lookup/stats/health over a
// real socket, and the typed error surface — deadline-exceeded, per-tenant
// queue-full, admission rejection, corrupt-artifact, unknown-tenant — each
// round-tripping to a distinct protocol error code.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_io.hpp"
#include "net/async_client.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/schedule_service.hpp"
#include "tenant/tenant_service.hpp"

namespace ss::net {
namespace {

std::string ProblemText(int salt) {
  graph::ProblemSpec spec;
  const TaskId src = spec.graph.AddTask("src", /*is_source=*/true);
  const TaskId mid = spec.graph.AddTask("mid");
  const TaskId sink = spec.graph.AddTask("sink");
  const ChannelId a = spec.graph.AddChannel("a", 100);
  spec.graph.SetProducer(src, a);
  spec.graph.AddConsumer(mid, a);
  const ChannelId b = spec.graph.AddChannel("b", 100);
  spec.graph.SetProducer(mid, b);
  spec.graph.AddConsumer(sink, b);
  spec.costs.Set(RegimeId(0), src, graph::TaskCost::Serial(100 + salt));
  spec.costs.Set(RegimeId(0), mid, graph::TaskCost::Serial(200));
  spec.costs.Set(RegimeId(0), sink, graph::TaskCost::Serial(50));
  spec.machine = graph::MachineConfig::SingleNode(2);
  spec.comm = graph::CommModel::Free();
  spec.regime_count = 1;
  return graph::FormatProblem(spec);
}

SolveRequestMsg SolveMsg(const std::string& tenant, int salt) {
  SolveRequestMsg msg;
  msg.tenant = tenant;
  msg.problem_text = ProblemText(salt);
  msg.regime = 0;
  return msg;
}

// ---- Codec round-trips (no socket) ---------------------------------------

TEST(Protocol, SolveRequestRoundTrip) {
  SolveRequestMsg msg;
  msg.tenant = "team-a";
  msg.problem_text = "task src serial=10\n";
  msg.regime = 3;
  msg.deadline_micros = 250000;
  msg.allow_degraded = true;
  const auto frame = Encode(msg);

  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size());
  Frame out;
  auto ready = decoder.Next(&out);
  ASSERT_TRUE(ready.ok()) << ready.status().ToString();
  ASSERT_TRUE(*ready);
  EXPECT_EQ(out.type, MsgType::kSolve);

  SolveRequestMsg decoded;
  ASSERT_TRUE(Decode(out.body.data(), out.body.size(), &decoded).ok());
  EXPECT_EQ(decoded.tenant, msg.tenant);
  EXPECT_EQ(decoded.problem_text, msg.problem_text);
  EXPECT_EQ(decoded.regime, msg.regime);
  EXPECT_EQ(decoded.deadline_micros, msg.deadline_micros);
  EXPECT_EQ(decoded.allow_degraded, msg.allow_degraded);
}

TEST(Protocol, StatsResponseRoundTrip) {
  StatsResponseMsg msg;
  msg.requests = 42;
  msg.cache_hits = 17;
  msg.retries = 5;
  msg.protocol_errors = 3;
  msg.shed_overload = 2;
  msg.expired_in_queue = 4;
  msg.uptime_micros = 123456789;
  TenantStatsMsg t;
  t.name = "video";
  t.weight = 4.0;
  t.admitted = 9;
  t.p99_latency_us = 1234.5;
  t.p999_latency_us = 5678.25;
  msg.tenants.push_back(t);
  LoopStatsMsg loop;
  loop.loop = 1;
  loop.connections_active = 3;
  loop.frames_received = 77;
  loop.responses_sent = 76;
  msg.loops.push_back(loop);
  const auto frame = Encode(msg);

  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size());
  Frame out;
  auto ready = decoder.Next(&out);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready);
  EXPECT_EQ(out.type, MsgType::kStatsOk);

  StatsResponseMsg decoded;
  ASSERT_TRUE(Decode(out.body.data(), out.body.size(), &decoded).ok());
  EXPECT_EQ(decoded.requests, 42u);
  EXPECT_EQ(decoded.cache_hits, 17u);
  EXPECT_EQ(decoded.retries, 5u);
  EXPECT_EQ(decoded.protocol_errors, 3u);
  EXPECT_EQ(decoded.shed_overload, 2u);
  EXPECT_EQ(decoded.expired_in_queue, 4u);
  EXPECT_EQ(decoded.uptime_micros, 123456789);
  ASSERT_EQ(decoded.tenants.size(), 1u);
  EXPECT_EQ(decoded.tenants[0].name, "video");
  EXPECT_DOUBLE_EQ(decoded.tenants[0].weight, 4.0);
  EXPECT_EQ(decoded.tenants[0].admitted, 9u);
  EXPECT_DOUBLE_EQ(decoded.tenants[0].p99_latency_us, 1234.5);
  EXPECT_DOUBLE_EQ(decoded.tenants[0].p999_latency_us, 5678.25);
  ASSERT_EQ(decoded.loops.size(), 1u);
  EXPECT_EQ(decoded.loops[0].loop, 1u);
  EXPECT_EQ(decoded.loops[0].connections_active, 3u);
  EXPECT_EQ(decoded.loops[0].frames_received, 77u);
  EXPECT_EQ(decoded.loops[0].responses_sent, 76u);
}

TEST(Protocol, ErrorCodesSurviveTheWire) {
  for (WireError code :
       {WireError::kMalformed, WireError::kDeadlineExceeded,
        WireError::kQueueFull, WireError::kAdmissionRejected,
        WireError::kUnknownTenant, WireError::kCorruptArtifact,
        WireError::kShuttingDown}) {
    ErrorResponseMsg msg;
    msg.code = code;
    msg.message = WireErrorName(code);
    const auto frame = Encode(msg);
    FrameDecoder decoder;
    decoder.Append(frame.data(), frame.size());
    Frame out;
    auto ready = decoder.Next(&out);
    ASSERT_TRUE(ready.ok());
    ASSERT_TRUE(*ready);
    ASSERT_EQ(out.type, MsgType::kError);
    ErrorResponseMsg decoded;
    ASSERT_TRUE(Decode(out.body.data(), out.body.size(), &decoded).ok());
    EXPECT_EQ(decoded.code, code);
    EXPECT_EQ(decoded.message, msg.message);
  }
}

TEST(Protocol, StatusRoundTripIsTyped) {
  EXPECT_EQ(WireErrorFromStatus(DeadlineExceededError("d")),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(WireErrorFromStatus(WouldBlockError("q")), WireError::kQueueFull);
  EXPECT_EQ(WireErrorFromStatus(AdmissionRejectedError("a")),
            WireError::kAdmissionRejected);
  EXPECT_EQ(WireErrorFromStatus(CorruptArtifactError("c")),
            WireError::kCorruptArtifact);
  EXPECT_EQ(StatusFromWireError(WireError::kDeadlineExceeded, "d").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusFromWireError(WireError::kQueueFull, "q").code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(StatusFromWireError(WireError::kAdmissionRejected, "a").code(),
            StatusCode::kAdmissionRejected);
  EXPECT_EQ(StatusFromWireError(WireError::kCorruptArtifact, "c").code(),
            StatusCode::kCorruptArtifact);
}

// ---- FrameDecoder against hostile input ----------------------------------

TEST(FrameDecoder, ReassemblesByteAtATime) {
  SolveRequestMsg msg;
  msg.tenant = "t";
  msg.problem_text = "x";
  const auto frame = Encode(msg);

  FrameDecoder decoder;
  Frame out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Append(&frame[i], 1);
    auto ready = decoder.Next(&out);
    ASSERT_TRUE(ready.ok());
    EXPECT_FALSE(*ready) << "frame complete after " << (i + 1) << " bytes";
  }
  decoder.Append(&frame[frame.size() - 1], 1);
  auto ready = decoder.Next(&out);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(*ready);
  EXPECT_EQ(out.type, MsgType::kSolve);
}

TEST(FrameDecoder, TwoFramesInOneChunk) {
  const auto a = EncodeHealthRequest();
  const auto b = EncodeStatsRequest();
  std::vector<std::uint8_t> both = a;
  both.insert(both.end(), b.begin(), b.end());

  FrameDecoder decoder;
  decoder.Append(both.data(), both.size());
  Frame out;
  auto first = decoder.Next(&out);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);
  EXPECT_EQ(out.type, MsgType::kHealth);
  auto second = decoder.Next(&out);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(*second);
  EXPECT_EQ(out.type, MsgType::kStats);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, OversizedLengthIsPermanentError) {
  // length = 2 MiB > kMaxFrameBytes.
  const std::uint8_t prefix[] = {0x00, 0x00, 0x20, 0x00};
  FrameDecoder decoder;
  decoder.Append(prefix, sizeof(prefix));
  Frame out;
  auto ready = decoder.Next(&out);
  ASSERT_FALSE(ready.ok());
  EXPECT_EQ(ready.status().code(), StatusCode::kInvalidArgument);
  // Sticky: feeding more bytes does not revive the stream.
  const std::uint8_t more[] = {0x01};
  decoder.Append(more, sizeof(more));
  EXPECT_FALSE(decoder.Next(&out).ok());
}

TEST(FrameDecoder, RuntLengthAndBadVersionAreErrors) {
  {
    // length = 1: too short to hold version + type.
    const std::uint8_t frame[] = {0x01, 0x00, 0x00, 0x00, 0x01};
    FrameDecoder decoder;
    decoder.Append(frame, sizeof(frame));
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
  {
    // version 9 != kProtocolVersion.
    const std::uint8_t frame[] = {0x02, 0x00, 0x00, 0x00, 0x09, 0x04};
    FrameDecoder decoder;
    decoder.Append(frame, sizeof(frame));
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
}

// ---- Protocol v2: request correlation ------------------------------------

TEST(ProtocolV2, FrameRoundTripsVersionAndRequestId) {
  SolveRequestMsg msg = SolveMsg("t", 1);
  const auto v2 = EncodeFrame(MsgType::kSolve, EncodeBody(msg),
                              kProtocolVersion2, 0x0123456789abcdefULL);
  FrameDecoder decoder;
  decoder.Append(v2.data(), v2.size());
  Frame out;
  auto ready = decoder.Next(&out);
  ASSERT_TRUE(ready.ok()) << ready.status().ToString();
  ASSERT_TRUE(*ready);
  EXPECT_EQ(out.version, kProtocolVersion2);
  EXPECT_EQ(out.request_id, 0x0123456789abcdefULL);
  EXPECT_EQ(out.type, MsgType::kSolve);
  SolveRequestMsg decoded;
  ASSERT_TRUE(Decode(out.body.data(), out.body.size(), &decoded).ok());
  EXPECT_EQ(decoded.tenant, msg.tenant);

  // v1 frames decode with request_id 0 — the codec never invents an id.
  const auto v1 = Encode(msg);
  FrameDecoder v1_decoder;
  v1_decoder.Append(v1.data(), v1.size());
  ASSERT_TRUE(*v1_decoder.Next(&out));
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.request_id, 0u);
}

TEST(ProtocolV2, ReassemblesByteAtATime) {
  const auto frame =
      EncodeFrame(MsgType::kHealth, {}, kProtocolVersion2, 42);
  FrameDecoder decoder;
  Frame out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Append(&frame[i], 1);
    auto ready = decoder.Next(&out);
    ASSERT_TRUE(ready.ok());
    EXPECT_FALSE(*ready) << "frame complete after " << (i + 1) << " bytes";
  }
  decoder.Append(&frame[frame.size() - 1], 1);
  auto ready = decoder.Next(&out);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.type, MsgType::kHealth);
}

TEST(ProtocolV2, TruncatedRequestIdIsTypedError) {
  // A v2 frame whose length leaves no room for the 8-byte request_id:
  // every length in [2, 9] is a runt. The decoder must fail typed, not
  // read past the header.
  for (std::uint32_t len = 2; len < 10; ++len) {
    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>(len & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
    frame.push_back(kProtocolVersion2);
    frame.push_back(static_cast<std::uint8_t>(MsgType::kHealth));
    for (std::uint32_t i = 2; i < len; ++i) frame.push_back(0x00);
    FrameDecoder decoder;
    decoder.Append(frame.data(), frame.size());
    Frame out;
    auto ready = decoder.Next(&out);
    ASSERT_FALSE(ready.ok()) << "len=" << len;
    EXPECT_EQ(ready.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ProtocolV2, TruncationSweepNeverCrashesDecoder) {
  // Fuzz-ish: every strict prefix of a v2 frame is either "need more
  // bytes" or a typed error — never a crash, never a phantom frame.
  SolveRequestMsg msg = SolveMsg("t", 3);
  const auto frame = EncodeFrame(MsgType::kSolve, EncodeBody(msg),
                                 kProtocolVersion2, 7);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Append(frame.data(), cut);
    Frame out;
    auto ready = decoder.Next(&out);
    if (ready.ok()) EXPECT_FALSE(*ready) << "cut=" << cut;
  }
}

TEST(WireReaderTest, TruncatedAndTrailingBodiesFailDecode) {
  SolveRequestMsg msg = SolveMsg("t", 1);
  const auto frame = Encode(msg);
  // Body starts after [u32 length][u8 version][u8 type].
  const std::uint8_t* body = frame.data() + 6;
  const std::size_t body_size = frame.size() - 6;

  SolveRequestMsg out;
  ASSERT_TRUE(Decode(body, body_size, &out).ok());
  // Every strict prefix of the body must fail, never crash (fuzz-ish sweep
  // over all truncation points).
  for (std::size_t cut = 0; cut < body_size; ++cut) {
    EXPECT_FALSE(Decode(body, cut, &out).ok()) << "cut=" << cut;
  }
  // Trailing garbage is malformed too (hides version skew).
  std::vector<std::uint8_t> padded(body, body + body_size);
  padded.push_back(0xFF);
  EXPECT_FALSE(Decode(padded.data(), padded.size(), &out).ok());
}

// ---- End-to-end over a real socket ---------------------------------------

struct TestServer {
  service::ScheduleService service;
  tenant::TenantScheduler tenants;
  Server server;

  static ServerOptions FastDrain() {
    ServerOptions options;
    options.drain_timeout = ticks::FromMillis(300);
    return options;
  }

  TestServer(service::ServiceOptions service_options,
             tenant::TenantSchedulerOptions tenant_options,
             ServerOptions server_options = FastDrain())
      : service(std::move(service_options)),
        tenants(&service, std::move(tenant_options)),
        server(std::move(server_options), &service, &tenants) {}

  ~TestServer() {
    server.Stop();
    tenants.Shutdown();
    service.Shutdown();
  }

  Status StartAndConnect(Client* client) {
    SS_RETURN_IF_ERROR(server.Start());
    return client->Connect("127.0.0.1", server.port());
  }
};

service::ServiceOptions Workers(int n) {
  service::ServiceOptions options;
  options.workers = n;
  return options;
}

tenant::TenantSchedulerOptions Dispatchers(int n) {
  tenant::TenantSchedulerOptions options;
  options.dispatch_threads = n;
  return options;
}

TEST(NetServer, SolveLookupStatsHealthHappyPath) {
  TestServer ts(Workers(2), Dispatchers(2));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, "ok");
  EXPECT_GE(health->uptime_micros, 0);

  // Lookup before any solve: clean miss, not an error.
  LookupRequestMsg lookup;
  lookup.tenant = "alice";
  lookup.problem_text = ProblemText(1);
  auto miss = client.Lookup(lookup);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->found);

  auto cold = client.Solve(SolveMsg("alice", 1));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->cache_hit);
  EXPECT_GT(cold->summary.latency, 0);
  EXPECT_GT(cold->summary.initiation_interval, 0);
  EXPECT_EQ(cold->summary.quality, 0) << "expected a proven-optimal result";
  EXPECT_FALSE(cold->summary.fingerprint_hex.empty());

  auto warm = client.Solve(SolveMsg("alice", 1));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->summary.fingerprint_hex, cold->summary.fingerprint_hex);
  EXPECT_EQ(warm->summary.latency, cold->summary.latency);

  auto hit = client.Lookup(lookup);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->found);
  EXPECT_EQ(hit->summary.fingerprint_hex, cold->summary.fingerprint_hex);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->requests, 1u);       // the dispatched cold solve
  EXPECT_GE(stats->frames_received, 5u);
  EXPECT_EQ(stats->protocol_errors, 0u);
  EXPECT_EQ(stats->connections_active, 1u);
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].name, "alice");
  EXPECT_EQ(stats->tenants[0].admitted, 2u);
  EXPECT_EQ(stats->tenants[0].cache_hits, 2u);  // warm solve + lookup hit
  EXPECT_EQ(stats->tenants[0].dispatched, 1u);

  const ServerStats server_stats = ts.server.Stats();
  EXPECT_EQ(server_stats.protocol_errors, 0u);
  EXPECT_GE(server_stats.responses_sent, 6u);
}

TEST(NetServer, DeadlineExceededRoundTripsTyped) {
  // Paused service: the dispatched solve can only end by deadline.
  TestServer ts(Workers(0), Dispatchers(1));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  SolveRequestMsg msg = SolveMsg("alice", 2);
  msg.deadline_micros = 50000;  // 50 ms
  auto result = client.Solve(msg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST(NetServer, PerTenantQueueFullRoundTripsTyped) {
  // No dispatchers and a one-deep lane: the first solve parks in the
  // tenant's queue, the second bounces with QUEUE_FULL.
  tenant::TenantSchedulerOptions tenant_options = Dispatchers(0);
  tenant_options.registry.default_config.queue_capacity = 1;
  TestServer ts(Workers(0), std::move(tenant_options));
  Client parked;
  ASSERT_TRUE(ts.StartAndConnect(&parked).ok());

  const auto first = Encode(SolveMsg("bob", 3));
  ASSERT_TRUE(parked.SendBytes(first.data(), first.size()).ok());

  // Wait until the server has admitted the first solve into bob's lane.
  Client stats_client;
  ASSERT_TRUE(stats_client.Connect("127.0.0.1", ts.server.port()).ok());
  bool parked_visible = false;
  for (int i = 0; i < 200 && !parked_visible; ++i) {
    auto stats = stats_client.Stats();
    ASSERT_TRUE(stats.ok());
    for (const auto& t : stats->tenants) {
      parked_visible |= (t.name == "bob" && t.queued == 1);
    }
    if (!parked_visible) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(parked_visible);

  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", ts.server.port()).ok());
  auto full = second.Solve(SolveMsg("bob", 4));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kWouldBlock)
      << full.status().ToString();

  // Backpressure is per-tenant: carol's solve parks in her own lane
  // instead of bouncing (sent raw — with no dispatchers it never answers).
  const auto carol = Encode(SolveMsg("carol", 5));
  ASSERT_TRUE(second.SendBytes(carol.data(), carol.size()).ok());
  bool carol_parked = false;
  for (int i = 0; i < 200 && !carol_parked; ++i) {
    auto stats = stats_client.Stats();
    ASSERT_TRUE(stats.ok());
    for (const auto& t : stats->tenants) {
      carol_parked |= (t.name == "carol" && t.queued == 1);
    }
    if (!carol_parked) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(carol_parked);
  EXPECT_EQ(ts.server.Stats().protocol_errors, 0u);
}

TEST(NetServer, AdmissionRejectionRoundTripsTyped) {
  tenant::TenantSchedulerOptions tenant_options = Dispatchers(2);
  tenant_options.registry.default_config.rate_per_sec = 0.0001;
  tenant_options.registry.default_config.burst = 1.0;
  TestServer ts(Workers(2), std::move(tenant_options));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  auto first = client.Solve(SolveMsg("dave", 6));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto second = client.Solve(SolveMsg("dave", 7));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAdmissionRejected)
      << second.status().ToString();

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].rejected_rate_limited, 1u);
}

TEST(NetServer, CorruptArtifactRoundTripsTyped) {
  service::ServiceOptions service_options = Workers(2);
  service_options.max_solve_retries = 0;
  service_options.solve_fault_injector = [](const graph::Fingerprint&, int) {
    return CorruptArtifactError("injected corrupt artifact");
  };
  TestServer ts(std::move(service_options), Dispatchers(1));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  auto result = client.Solve(SolveMsg("erin", 8));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptArtifact)
      << result.status().ToString();
}

TEST(NetServer, UnknownTenantRoundTripsTyped) {
  tenant::TenantSchedulerOptions tenant_options = Dispatchers(1);
  tenant_options.registry.auto_register = false;
  TestServer ts(Workers(2), std::move(tenant_options));
  ASSERT_TRUE(ts.tenants.RegisterTenant({.name = "known"}).ok());
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  auto solve = client.Solve(SolveMsg("ghost", 9));
  ASSERT_FALSE(solve.ok());
  EXPECT_EQ(solve.status().code(), StatusCode::kNotFound);

  LookupRequestMsg lookup;
  lookup.tenant = "ghost";
  lookup.problem_text = ProblemText(9);
  auto probe = client.Lookup(lookup);
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kNotFound);

  // A registered tenant's lookup miss is found=false, NOT an error: the
  // two kNotFound sources stay distinguishable on the wire.
  lookup.tenant = "known";
  auto miss = client.Lookup(lookup);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->found);
}

TEST(NetServer, BadProblemTextIsMalformedButConnectionSurvives) {
  TestServer ts(Workers(2), Dispatchers(1));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  SolveRequestMsg bad;
  bad.tenant = "alice";
  bad.problem_text = "this is not a problem\n";
  auto result = client.Solve(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Content errors are per-request, not per-connection.
  auto good = client.Solve(SolveMsg("alice", 10));
  ASSERT_TRUE(good.ok()) << good.status().ToString();

  SolveRequestMsg bad_regime = SolveMsg("alice", 10);
  bad_regime.regime = 99;
  auto out_of_range = client.Solve(bad_regime);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetServer, GarbageBytesGetErrorFrameThenClose) {
  TestServer ts(Workers(0), Dispatchers(0));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  // Valid length prefix, wrong protocol version.
  const std::uint8_t bad_version[] = {0x02, 0x00, 0x00, 0x00, 0x09, 0x04};
  ASSERT_TRUE(client.SendBytes(bad_version, sizeof(bad_version)).ok());
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MsgType::kError);
  ErrorResponseMsg err;
  ASSERT_TRUE(Decode(frame->body.data(), frame->body.size(), &err).ok());
  EXPECT_EQ(err.code, WireError::kMalformed);
  // The stream is unrecoverable; the server closes it.
  auto closed = client.ReadFrame();
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kCancelled);
  EXPECT_GE(ts.server.Stats().protocol_errors, 1u);
}

TEST(NetServer, UnknownTypeAndNonEmptyHealthBodyAreRejected) {
  TestServer ts(Workers(0), Dispatchers(0));
  {
    Client client;
    ASSERT_TRUE(ts.StartAndConnect(&client).ok());
    // Unknown message type 42.
    const auto frame = EncodeFrame(static_cast<MsgType>(42), {});
    ASSERT_TRUE(client.SendBytes(frame.data(), frame.size()).ok());
    auto reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, MsgType::kError);
    ErrorResponseMsg err;
    ASSERT_TRUE(Decode(reply->body.data(), reply->body.size(), &err).ok());
    EXPECT_EQ(err.code, WireError::kUnsupported);
  }
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());
    // Health request must have an empty body; trailing bytes are malformed.
    const auto frame = EncodeFrame(MsgType::kHealth, {0x01, 0x02});
    ASSERT_TRUE(client.SendBytes(frame.data(), frame.size()).ok());
    auto reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, MsgType::kError);
    ErrorResponseMsg err;
    ASSERT_TRUE(Decode(reply->body.data(), reply->body.size(), &err).ok());
    EXPECT_EQ(err.code, WireError::kMalformed);
  }
}

TEST(NetServer, PartialWritesReassembleIntoOneRequest) {
  TestServer ts(Workers(2), Dispatchers(1));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());

  // Dribble a valid solve frame a few bytes at a time across many TCP
  // segments; the incremental decoder must see exactly one request.
  const auto frame = Encode(SolveMsg("alice", 11));
  for (std::size_t off = 0; off < frame.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, frame.size() - off);
    ASSERT_TRUE(client.SendBytes(frame.data() + off, n).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MsgType::kSolveOk);
  EXPECT_EQ(ts.server.Stats().frames_received, 1u);
  EXPECT_EQ(ts.server.Stats().protocol_errors, 0u);
}

TEST(NetServer, IdleConnectionsAreReaped) {
  ServerOptions options = TestServer::FastDrain();
  options.idle_timeout = ticks::FromMillis(100);
  TestServer ts(Workers(0), Dispatchers(0), std::move(options));
  ClientOptions client_options;
  client_options.io_timeout = ticks::FromSeconds(5);
  Client idle(client_options);
  ASSERT_TRUE(ts.server.Start().ok());
  ASSERT_TRUE(idle.Connect("127.0.0.1", ts.server.port()).ok());

  // The loop wakes at least every 250 ms; the idle close lands well
  // within the read timeout.
  auto frame = idle.ReadFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ts.server.Stats().idle_closed, 1u);
}

// Satellite regression: signals without SA_RESTART landing mid-syscall
// must not surface as spurious I/O errors. Covers connect() (EINTR leaves
// the handshake in flight; the client must wait it out via poll +
// SO_ERROR) and send()/recv() restarts.
void IgnoreSignal(int) {}

TEST(NetClient, SurvivesSignalStormDuringRoundTrips) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());

  struct sigaction action {};
  action.sa_handler = IgnoreSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  std::atomic<bool> storming{true};
  const pthread_t victim = pthread_self();
  std::thread storm([&] {
    while (storming.load(std::memory_order_acquire)) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  for (int i = 0; i < 25; ++i) {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok())
        << "iteration " << i;
    auto health = client.Health();
    EXPECT_TRUE(health.ok()) << health.status().ToString();
  }
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());
  auto solve = client.Solve(SolveMsg("alice", 13));
  EXPECT_TRUE(solve.ok()) << solve.status().ToString();

  storming.store(false, std::memory_order_release);
  storm.join();
  sigaction(SIGUSR1, &previous, nullptr);
}

// Satellite regression: a graceful drain must flush (not drop) responses
// buffered behind a slow reader before reaping the connection.
TEST(NetServer, DrainFlushesResponsesBufferedBehindSlowReader) {
  ServerOptions server_options;
  server_options.drain_timeout = ticks::FromSeconds(5);
  TestServer ts(Workers(0), Dispatchers(0), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());

  // Raw socket with a tiny receive buffer, set before connect so the TCP
  // window is negotiated small: pipelined responses pile up in the
  // server's out-queue instead of the kernel's.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 1024;
  ASSERT_EQ(
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)), 0);
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ts.server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  constexpr std::uint64_t kRequests = 4000;
  const auto health = EncodeHealthRequest();
  std::vector<std::uint8_t> burst;
  burst.reserve(health.size() * kRequests);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    burst.insert(burst.end(), health.begin(), health.end());
  }
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t w =
        ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << "send failed at offset " << sent;
    sent += static_cast<std::size_t>(w);
  }
  // Every request processed and its response queued (most still buffered
  // server-side: nobody is reading yet).
  for (int i = 0;
       i < 1000 && ts.server.Stats().responses_sent < kRequests; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(ts.server.Stats().frames_received, kRequests);
  ASSERT_EQ(ts.server.Stats().responses_sent, kRequests);

  // Drain begins with a full out-queue; only then start reading, slowly.
  std::thread stopper([&] { ts.server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  FrameDecoder decoder;
  std::uint64_t received = 0;
  std::vector<char> buf(8192);
  while (true) {
    const ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
    if (r == 0) break;  // clean EOF after the flush
    ASSERT_FALSE(r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        << "drain stalled after " << received << " responses";
    if (r < 0) {
      ASSERT_EQ(errno, EINTR) << "recv: " << std::strerror(errno);
      continue;
    }
    decoder.Append(buf.data(), static_cast<std::size_t>(r));
    Frame frame;
    while (true) {
      auto ready = decoder.Next(&frame);
      ASSERT_TRUE(ready.ok()) << ready.status().ToString();
      if (!*ready) break;
      EXPECT_EQ(frame.type, MsgType::kHealthOk);
      ++received;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stopper.join();
  ::close(fd);
  EXPECT_EQ(received, kRequests);
}

// ---- AsyncClient: pipelined protocol v2 ----------------------------------

TEST(AsyncClientTest, BlockingVerbsRoundTripOverV2) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  AsyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, "ok");

  auto cold = client.Solve(SolveMsg("alice", 31));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->cache_hit);
  auto warm = client.Solve(SolveMsg("alice", 31));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->summary.fingerprint_hex, cold->summary.fingerprint_hex);

  LookupRequestMsg lookup;
  lookup.tenant = "alice";
  lookup.problem_text = ProblemText(31);
  auto hit = client.Lookup(lookup);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->found);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->protocol_errors, 0u);
  ASSERT_GE(stats->loops.size(), 1u);  // per-loop roll-up present
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_GE(stats->tenants[0].p999_latency_us,
            stats->tenants[0].p99_latency_us);
  EXPECT_EQ(client.InFlight(), 0u);
}

TEST(AsyncClientTest, ResponsesCompleteOutOfOrder) {
  // Paused workers: the solve can only finish via its 400 ms deadline,
  // while health is answered inline. On v1 the pipelined health response
  // would conceptually queue behind nothing (it is inline), but the solve
  // response correlation is what lets the client pair them out of order.
  TestServer ts(Workers(0), Dispatchers(1));
  ASSERT_TRUE(ts.server.Start().ok());
  AsyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> order;
  Status solve_status = OkStatus();

  SolveRequestMsg solve = SolveMsg("alice", 32);
  solve.deadline_micros = 400000;
  client.SolveAsync(solve, [&](Expected<SolveResponseMsg> result) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back("solve");
    solve_status = result.ok() ? OkStatus() : result.status();
    cv.notify_all();
  });
  client.HealthAsync([&](Expected<HealthResponseMsg> result) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(result.ok() ? "health" : "health-error");
    cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return order.size() == 2; }));
  // The health response submitted *after* the solve arrives *before* it:
  // the parked solve did not head-of-line block the connection.
  ASSERT_EQ(order[0], "health");
  ASSERT_EQ(order[1], "solve");
  EXPECT_EQ(solve_status.code(), StatusCode::kDeadlineExceeded)
      << solve_status.ToString();
}

TEST(AsyncClientTest, WindowBoundsInFlight) {
  TestServer ts(Workers(0), Dispatchers(1));
  ASSERT_TRUE(ts.server.Start().ok());
  AsyncClientOptions options;
  options.window = 2;
  AsyncClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());

  // Two parked solves fill the window.
  std::atomic<int> solves_done{0};
  for (int salt = 0; salt < 2; ++salt) {
    SolveRequestMsg solve = SolveMsg("alice", 33 + salt);
    solve.deadline_micros = 300000;
    client.SolveAsync(solve, [&](Expected<SolveResponseMsg>) {
      solves_done.fetch_add(1);
    });
  }
  EXPECT_EQ(client.InFlight(), 2u);

  // A third request blocks in Submit until a window slot frees (when the
  // parked solves expire), then completes normally.
  std::atomic<bool> health_done{false};
  std::thread blocked([&] {
    auto health = client.Health();
    EXPECT_TRUE(health.ok()) << health.status().ToString();
    health_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(health_done.load());
  EXPECT_EQ(client.InFlight(), 2u);
  blocked.join();
  EXPECT_TRUE(health_done.load());
  EXPECT_EQ(solves_done.load(), 2);
}

TEST(AsyncClientTest, ExpiredRequestsDropTheirLateResponses) {
  // Client-side deadline (100 ms) fires long before the server's (400 ms):
  // the request completes kDeadlineExceeded locally, and the late server
  // response is dropped by request_id instead of poisoning the stream.
  TestServer ts(Workers(0), Dispatchers(1));
  ASSERT_TRUE(ts.server.Start().ok());
  AsyncClientOptions options;
  options.io_timeout = ticks::FromMillis(100);
  AsyncClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());

  SolveRequestMsg solve = SolveMsg("alice", 35);
  solve.deadline_micros = 400000;
  auto result = client.Solve(solve);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();

  // Wait past the server-side expiry so its response actually arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_TRUE(client.connected());
  auto health = client.Health();
  EXPECT_TRUE(health.ok()) << health.status().ToString();
}

// ---- Sharded event loops -------------------------------------------------

TEST(NetMultiLoop, RoundRobinSpreadsConnectionsAndStatsRollUp) {
  ServerOptions server_options = TestServer::FastDrain();
  server_options.loop_threads = 4;
  TestServer ts(Workers(2), Dispatchers(2), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());

  // 8 connections over 4 loops: round-robin handoff puts exactly 2 on
  // each. A completed health round-trip proves each connection was
  // adopted by its loop (the response had to come from somewhere).
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 8; ++i) {
    auto client = std::make_unique<Client>();
    ASSERT_TRUE(client->Connect("127.0.0.1", ts.server.port()).ok());
    auto health = client->Health();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    clients.push_back(std::move(client));
  }

  const std::vector<ServerStats> per_loop = ts.server.PerLoopStats();
  ASSERT_EQ(per_loop.size(), 4u);
  for (std::size_t i = 0; i < per_loop.size(); ++i) {
    EXPECT_EQ(per_loop[i].accepted, 2u) << "loop " << i;
    EXPECT_EQ(per_loop[i].active, 2u) << "loop " << i;
    EXPECT_GE(per_loop[i].frames_received, 2u) << "loop " << i;
  }
  const ServerStats total = ts.server.Stats();
  EXPECT_EQ(total.accepted, 8u);
  EXPECT_EQ(total.active, 8u);

  // The same roll-up is visible over the wire.
  auto stats = clients[0]->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->loops.size(), 4u);
  std::uint64_t conns = 0;
  for (const auto& loop : stats->loops) conns += loop.connections_active;
  EXPECT_EQ(conns, 8u);
  EXPECT_EQ(stats->connections_active, 8u);
}

TEST(NetMultiLoop, MixedVersionClientsInterleaveCleanly) {
  ServerOptions server_options = TestServer::FastDrain();
  server_options.loop_threads = 2;
  TestServer ts(Workers(2), Dispatchers(2), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());

  Client v1;
  AsyncClient v2;
  ASSERT_TRUE(v1.Connect("127.0.0.1", ts.server.port()).ok());
  ASSERT_TRUE(v2.Connect("127.0.0.1", ts.server.port()).ok());

  auto cold = v1.Solve(SolveMsg("alice", 36));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = v2.Solve(SolveMsg("alice", 36));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->summary.fingerprint_hex, cold->summary.fingerprint_hex);

  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(v1.Health().ok());
    ASSERT_TRUE(v2.Health().ok());
  }
  auto stats = v2.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->protocol_errors, 0u);
  EXPECT_EQ(ts.server.Stats().protocol_errors, 0u);
}

TEST(NetMultiLoop, StopDrainsEveryLoop) {
  ServerOptions server_options = TestServer::FastDrain();
  server_options.loop_threads = 3;
  TestServer ts(Workers(2), Dispatchers(2), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());

  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 6; ++i) {
    auto client = std::make_unique<Client>();
    ASSERT_TRUE(client->Connect("127.0.0.1", ts.server.port()).ok());
    ASSERT_TRUE(client->Health().ok());
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(ts.server.Stats().active, 6u);
  ts.server.Stop();
  EXPECT_TRUE(ts.server.draining());
  EXPECT_EQ(ts.server.Stats().active, 0u);
}

TEST(NetServer, DrainRefusesNewSolvesAndReportsDraining) {
  TestServer ts(Workers(2), Dispatchers(1));
  Client client;
  ASSERT_TRUE(ts.StartAndConnect(&client).ok());
  ASSERT_TRUE(client.Solve(SolveMsg("alice", 12)).ok());

  // Stop() from another thread while the connection stays open: the
  // server must finish the drain without hanging, and the client sees
  // the connection close.
  std::thread stopper([&] { ts.server.Stop(); });
  auto last = client.ReadFrame();
  EXPECT_FALSE(last.ok());  // closed (possibly after a drain window)
  stopper.join();
  EXPECT_TRUE(ts.server.draining());
}

}  // namespace
}  // namespace ss::net
