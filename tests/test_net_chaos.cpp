// Chaos tests for the network path: a deterministic fault-injecting proxy
// (ChaosProxy) sits between client and server and tears frames, delays and
// dribbles bytes, flips bits, resets connections at chosen protocol phases,
// and stalls like a slowloris. The invariants under all of it: every issued
// request resolves to exactly one *typed* outcome (success or a typed
// Status — never a crash, never a hang), the server survives and sheds or
// reaps abusive peers, and the ResilientClient turns retryable transport
// failures into eventual success because solve/lookup are idempotent by
// problem fingerprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_io.hpp"
#include "net/async_client.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/resilient_client.hpp"
#include "net/server.hpp"
#include "service/schedule_service.hpp"
#include "tenant/tenant_service.hpp"

namespace ss::net {
namespace {

std::string ProblemText(int salt) {
  graph::ProblemSpec spec;
  const TaskId src = spec.graph.AddTask("src", /*is_source=*/true);
  const TaskId sink = spec.graph.AddTask("sink");
  const ChannelId a = spec.graph.AddChannel("a", 100);
  spec.graph.SetProducer(src, a);
  spec.graph.AddConsumer(sink, a);
  spec.costs.Set(RegimeId(0), src, graph::TaskCost::Serial(100 + salt));
  spec.costs.Set(RegimeId(0), sink, graph::TaskCost::Serial(50));
  spec.machine = graph::MachineConfig::SingleNode(2);
  spec.comm = graph::CommModel::Free();
  spec.regime_count = 1;
  return graph::FormatProblem(spec);
}

SolveRequestMsg SolveMsg(const std::string& tenant, int salt) {
  SolveRequestMsg msg;
  msg.tenant = tenant;
  msg.problem_text = ProblemText(salt);
  msg.regime = 0;
  return msg;
}

struct TestServer {
  service::ScheduleService service;
  tenant::TenantScheduler tenants;
  Server server;

  static ServerOptions FastDrain() {
    ServerOptions options;
    options.drain_timeout = ticks::FromMillis(300);
    return options;
  }

  TestServer(service::ServiceOptions service_options,
             tenant::TenantSchedulerOptions tenant_options,
             ServerOptions server_options = FastDrain())
      : service(std::move(service_options)),
        tenants(&service, std::move(tenant_options)),
        server(std::move(server_options), &service, &tenants) {}

  ~TestServer() {
    server.Stop();
    tenants.Shutdown();
    service.Shutdown();
  }
};

service::ServiceOptions Workers(int n) {
  service::ServiceOptions options;
  options.workers = n;
  return options;
}

tenant::TenantSchedulerOptions Dispatchers(int n) {
  tenant::TenantSchedulerOptions options;
  options.dispatch_threads = n;
  return options;
}

/// Polls until the server reports no active connections (fds all reaped).
bool DrainsToZeroConnections(const Server& server) {
  for (int i = 0; i < 400; ++i) {
    if (server.Stats().active == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// ---- Transparent proxy ---------------------------------------------------

TEST(ChaosProxy, DefaultPlanIsTransparent) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosProxy proxy(ChaosPlan{}, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, "ok");

  auto cold = client.Solve(SolveMsg("alice", 1));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = client.Solve(SolveMsg("alice", 1));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);

  const auto stats = proxy.Stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_GT(stats.bytes_to_server, 0u);
  EXPECT_GT(stats.bytes_to_client, 0u);
  EXPECT_EQ(stats.resets, 0u);
  EXPECT_EQ(stats.flipped_bytes, 0u);
  client.Close();
  proxy.Stop();
  EXPECT_TRUE(DrainsToZeroConnections(ts.server));
}

TEST(ChaosProxy, DribbledBytesReassembleIntoWholeFrames) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 7;
  plan.dribble_prob = 1.0;
  plan.dribble_max_bytes = 5;
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
  auto solve = client.Solve(SolveMsg("alice", 2));
  ASSERT_TRUE(solve.ok()) << solve.status().ToString();
  auto stats_resp = client.Stats();
  ASSERT_TRUE(stats_resp.ok()) << stats_resp.status().ToString();
  EXPECT_EQ(stats_resp->protocol_errors, 0u);
  proxy.Stop();
}

TEST(ChaosProxy, DelayedDeliveryStillCompletes) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 11;
  plan.delay_prob = 1.0;
  plan.max_delay = ticks::FromMillis(10);
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_GT(proxy.Stats().delayed_chunks, 0u);
  proxy.Stop();
}

// ---- Flipped bytes -------------------------------------------------------

TEST(ChaosProxy, FlippedBytesSurfaceAsTypedOutcomesNeverCrashes) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 13;
  plan.flip_prob = 1.0;
  plan.max_flips = 3;
  plan.flip_window = 64;  // inside the request/response frames
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  // Every connection gets corrupted bytes in one direction; each request
  // must still resolve to exactly one typed outcome. A flip can land in a
  // string payload (request still decodes, solve proceeds) or in framing
  // (typed decode error / typed close) — both are legal; crashing or
  // hanging is not.
  int outcomes = 0;
  for (int i = 0; i < 8; ++i) {
    ClientOptions copts;
    copts.io_timeout = ticks::FromSeconds(5);
    Client client(copts);
    ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
    auto solve = client.Solve(SolveMsg("alice", 3));
    ++outcomes;  // ok or a typed Status; Solve returned exactly once
    if (!solve.ok()) {
      EXPECT_NE(solve.status().code(), StatusCode::kOk);
    }
  }
  EXPECT_EQ(outcomes, 8);
  EXPECT_GT(proxy.Stats().flipped_bytes, 0u);
  proxy.Stop();

  // The server survived all of it: a clean direct connection works.
  Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ts.server.port()).ok());
  auto health = direct.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, "ok");
}

// ---- Phase resets and the resilient client -------------------------------

TEST(ChaosProxy, PhaseResetsAreTypedOnThePlainClient) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 17;
  plan.reset_prob = 1.0;  // every connection resets at some phase
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  // Cut points are drawn over the first few frames of a connection, so
  // run several requests per connection to reach them. Every failure must
  // be a typed, retryable transport error.
  int failures = 0;
  for (int i = 0; i < 8; ++i) {
    ClientOptions copts;
    copts.io_timeout = ticks::FromMillis(500);
    Client client(copts);
    Status st = client.Connect("127.0.0.1", proxy.port());
    if (!st.ok()) continue;  // RST raced the connect; typed already
    for (int r = 0; r < 4; ++r) {
      auto solve = client.Solve(SolveMsg("alice", 4));
      if (solve.ok()) continue;
      ++failures;
      const StatusCode code = solve.status().code();
      EXPECT_TRUE(code == StatusCode::kCancelled ||
                  code == StatusCode::kInternal ||
                  code == StatusCode::kDeadlineExceeded)
          << solve.status().ToString();
      EXPECT_TRUE(ResilientClient::IsRetryable(solve.status()))
          << solve.status().ToString();
      break;  // the stream is dead; next connection
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(proxy.Stats().resets, 0u);
  proxy.Stop();
}

TEST(ResilientClient, RecoversAcrossInjectedResets) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 19;
  plan.reset_prob = 0.45;  // roughly half the connections die mid-exchange
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  ResilientClientOptions options;
  options.total_deadline = ticks::FromSeconds(20);
  options.io_timeout = ticks::FromMillis(500);
  options.max_attempts = 0;  // budget-bounded
  options.seed = 19;
  ResilientClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());

  for (int i = 0; i < 10; ++i) {
    auto solve = client.Solve(SolveMsg("alice", 5 + (i % 2)));
    ASSERT_TRUE(solve.ok()) << "request " << i << ": "
                            << solve.status().ToString();
  }
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_GE(client.stats().attempts, 11u);
  proxy.Stop();
}

TEST(ResilientClient, RetryPolicyIsKeyedOnTypedErrors) {
  EXPECT_TRUE(ResilientClient::IsRetryable(CancelledError("x")));
  EXPECT_TRUE(ResilientClient::IsRetryable(DeadlineExceededError("x")));
  EXPECT_TRUE(ResilientClient::IsRetryable(InternalError("x")));
  EXPECT_TRUE(ResilientClient::IsRetryable(OverloadedError("x")));
  EXPECT_TRUE(ResilientClient::IsRetryable(WouldBlockError("x")));
  EXPECT_TRUE(ResilientClient::IsRetryable(AdmissionRejectedError("x")));
  EXPECT_FALSE(ResilientClient::IsRetryable(InvalidArgumentError("x")));
  EXPECT_FALSE(ResilientClient::IsRetryable(CorruptArtifactError("x")));
  EXPECT_FALSE(ResilientClient::IsRetryable(NotFoundError("x")));
  EXPECT_FALSE(ResilientClient::IsRetryable(FailedPreconditionError("x")));

  // Transport failures invalidate the stream; typed pushback keeps it.
  EXPECT_TRUE(ResilientClient::NeedsReconnect(CancelledError("x")));
  EXPECT_TRUE(ResilientClient::NeedsReconnect(DeadlineExceededError("x")));
  EXPECT_TRUE(ResilientClient::NeedsReconnect(InternalError("x")));
  EXPECT_FALSE(ResilientClient::NeedsReconnect(OverloadedError("x")));
  EXPECT_FALSE(ResilientClient::NeedsReconnect(AdmissionRejectedError("x")));
}

TEST(ResilientClient, TerminalErrorsAreNotRetried) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ResilientClientOptions options;
  options.total_deadline = ticks::FromSeconds(5);
  ResilientClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());

  SolveRequestMsg bad;
  bad.tenant = "alice";
  bad.problem_text = "this is not a problem\n";
  auto result = client.Solve(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.stats().retries, 0u);  // terminal: exactly one attempt
}

// ---- Slowloris and overload ----------------------------------------------

TEST(ChaosProxy, SlowlorisStallIsReapedByReadProgressIdleEnforcement) {
  ServerOptions server_options = TestServer::FastDrain();
  server_options.idle_timeout = ticks::FromMillis(150);
  TestServer ts(Workers(2), Dispatchers(2), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 23;
  plan.stall_prob = 1.0;
  plan.stall_after_bytes = 10;  // mid-frame for any real request
  plan.stall_duration = kTickInfinity;
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  ClientOptions copts;
  copts.io_timeout = ticks::FromSeconds(5);
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
  // The request dies mid-frame inside the proxy; the server must not wait
  // forever on a half-received frame — no complete frame ever arrives, so
  // read progress never advances and the idle reaper closes the socket.
  auto solve = client.Solve(SolveMsg("alice", 7));
  ASSERT_FALSE(solve.ok());
  EXPECT_TRUE(solve.status().code() == StatusCode::kCancelled ||
              solve.status().code() == StatusCode::kDeadlineExceeded)
      << solve.status().ToString();
  for (int i = 0; i < 200 && ts.server.Stats().idle_closed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ts.server.Stats().idle_closed, 1u);
  EXPECT_EQ(proxy.Stats().stalls, 1u);
  proxy.Stop();
  EXPECT_TRUE(DrainsToZeroConnections(ts.server));
}

TEST(NetChaos, OverloadShedsWithTypedErrorAndCounter) {
  // Paused pipeline: admitted solves park forever, so the pending-solve
  // gauge climbs and the shed threshold triggers deterministically.
  ServerOptions server_options = TestServer::FastDrain();
  server_options.max_pending_solves = 2;
  TestServer ts(Workers(0), Dispatchers(0), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());

  Client parked;
  ASSERT_TRUE(parked.Connect("127.0.0.1", ts.server.port()).ok());
  for (int salt = 0; salt < 2; ++salt) {
    const auto frame = Encode(SolveMsg("alice", 20 + salt));
    ASSERT_TRUE(parked.SendBytes(frame.data(), frame.size()).ok());
  }
  // Wait until both solves are admitted (visible as queued work).
  Client stats_client;
  ASSERT_TRUE(stats_client.Connect("127.0.0.1", ts.server.port()).ok());
  bool both_parked = false;
  for (int i = 0; i < 200 && !both_parked; ++i) {
    auto stats = stats_client.Stats();
    ASSERT_TRUE(stats.ok());
    for (const auto& t : stats->tenants) {
      both_parked |= (t.name == "alice" && t.queued == 2);
    }
    if (!both_parked) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(both_parked);

  Client third;
  ASSERT_TRUE(third.Connect("127.0.0.1", ts.server.port()).ok());
  auto shed = third.Solve(SolveMsg("alice", 30));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded)
      << shed.status().ToString();
  EXPECT_TRUE(ResilientClient::IsRetryable(shed.status()));

  // Health and stats are never shed (cheap, answered inline), and the new
  // counter round-trips the wire.
  auto health = third.Health();
  ASSERT_TRUE(health.ok());
  auto stats = stats_client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shed_overload, 1u);
  EXPECT_EQ(ts.server.Stats().shed_overload, 1u);
}

TEST(NetChaos, PerConnectionInflightCapSheds) {
  ServerOptions server_options = TestServer::FastDrain();
  server_options.max_inflight_per_conn = 1;
  TestServer ts(Workers(0), Dispatchers(0), std::move(server_options));
  ASSERT_TRUE(ts.server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.server.port()).ok());
  // Pipeline two solves back-to-back: the first parks (paused pipeline),
  // the second exceeds the per-connection cap and bounces typed. The
  // error frame is the only response that can arrive.
  for (int salt = 0; salt < 2; ++salt) {
    const auto frame = Encode(SolveMsg("bob", 40 + salt));
    ASSERT_TRUE(client.SendBytes(frame.data(), frame.size()).ok());
  }
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MsgType::kError);
  ErrorResponseMsg err;
  ASSERT_TRUE(Decode(frame->body.data(), frame->body.size(), &err).ok());
  EXPECT_EQ(err.code, WireError::kOverloaded);
  EXPECT_EQ(ts.server.Stats().shed_overload, 1u);
}

// ---- Decoder fuzz through the chaos transport ----------------------------

TEST(NetChaos, TruncationAndCorruptionSweepThroughProxy) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;  // transparent: the sweep itself is the corruption
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  const auto frame = Encode(SolveMsg("alice", 8));
  // Truncations: every prefix boundary (stride to keep runtime sane),
  // connection closed mid-frame. The server must survive each one.
  for (std::size_t cut = 1; cut < frame.size(); cut += 7) {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
    ASSERT_TRUE(client.SendBytes(frame.data(), cut).ok());
    client.Close();
  }
  // Corruptions: single flipped byte at each position (stride); the
  // server answers a typed error frame, a valid response (flip landed in
  // a payload byte), or closes — never crashes.
  for (std::size_t pos = 0; pos < frame.size(); pos += 5) {
    std::vector<std::uint8_t> corrupt = frame;
    corrupt[pos] ^= 0x40;
    ClientOptions copts;
    copts.io_timeout = ticks::FromSeconds(2);
    Client client(copts);
    ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
    ASSERT_TRUE(client.SendBytes(corrupt.data(), corrupt.size()).ok());
    auto reply = client.ReadFrame();  // typed success, error, or close
    if (reply.ok()) {
      EXPECT_TRUE(reply->type == MsgType::kSolveOk ||
                  reply->type == MsgType::kError);
    }
  }
  proxy.Stop();

  // Post-sweep: the server is healthy and leaked no connections.
  Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ts.server.port()).ok());
  auto health = direct.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  auto stats = direct.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  direct.Close();
  EXPECT_TRUE(DrainsToZeroConnections(ts.server));
}

// ---- Randomized chaos soak ----------------------------------------------

// 64 seeds of mixed faults against one server. Invariants: every request
// returns exactly one typed outcome, the server never crashes or leaks
// connections, and a clean post-chaos health/stats round-trip succeeds.
TEST(NetChaos, SixtyFourSeedSoak) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());

  std::uint64_t issued = 0;
  std::uint64_t resolved = 0;
  std::uint64_t failed = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    ChaosPlan plan;
    plan.seed = seed;
    plan.reset_prob = 0.3;
    plan.flip_prob = 0.15;
    plan.flip_window = 96;
    plan.dribble_prob = 0.5;
    plan.dribble_max_bytes = 9;
    plan.delay_prob = 0.3;
    plan.max_delay = ticks::FromMillis(2);
    plan.stall_prob = 0.1;
    plan.stall_after_bytes = 10;
    plan.stall_duration = ticks::FromMillis(30);
    ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
    ASSERT_TRUE(proxy.Start().ok()) << "seed " << seed;

    ResilientClientOptions options;
    options.total_deadline = ticks::FromSeconds(10);
    options.io_timeout = ticks::FromMillis(400);
    options.backoff_base = ticks::FromMillis(1);
    options.backoff_max = ticks::FromMillis(20);
    options.max_attempts = 6;
    options.seed = seed;
    ResilientClient client(options);
    ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok())
        << "seed " << seed;

    for (int i = 0; i < 4; ++i) {
      ++issued;
      // Small salt set: most solves are cache hits, so the soak exercises
      // the transport, not the solver.
      auto solve = client.Solve(SolveMsg("soak", 50 + (i % 3)));
      ++resolved;  // returned exactly once, ok or typed
      if (!solve.ok()) {
        ++failed;
        EXPECT_NE(solve.status().code(), StatusCode::kOk);
      }
    }
    ++issued;
    auto health = client.Health();
    ++resolved;
    failed += !health.ok();
    proxy.Stop();
  }
  EXPECT_EQ(issued, resolved);
  // With retries and generous budgets the vast majority must get through;
  // flips can poison a stream terminally, so a small residue may fail.
  EXPECT_LT(failed, issued / 4) << failed << " of " << issued << " failed";

  // Post-chaos: clean direct round-trip and zero leaked connections.
  EXPECT_TRUE(DrainsToZeroConnections(ts.server));
  Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ts.server.port()).ok());
  auto health = direct.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, "ok");
  auto stats = direct.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->requests, 1u);
}

// ---- Pipelined v2 through the chaos transport ----------------------------

TEST(NetChaosV2, PipelinedSolvesSurviveDribbledBytes) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 23;
  plan.dribble_prob = 1.0;
  plan.dribble_max_bytes = 5;
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  AsyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port()).ok());
  // Seed the cache, then pipeline hits: 16 in-flight requests whose v2
  // responses all come back dribbled a few bytes at a time.
  auto cold = client.Solve(SolveMsg("alice", 60));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  std::atomic<int> ok_count{0};
  std::atomic<int> done_count{0};
  for (int i = 0; i < 16; ++i) {
    client.SolveAsync(SolveMsg("alice", 60),
                      [&](Expected<SolveResponseMsg> result) {
                        if (result.ok() && result->cache_hit) {
                          ok_count.fetch_add(1);
                        }
                        done_count.fetch_add(1);
                      });
  }
  for (int i = 0; i < 1000 && done_count.load() < 16; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(done_count.load(), 16);
  EXPECT_EQ(ok_count.load(), 16);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->protocol_errors, 0u);
  proxy.Stop();
}

TEST(NetChaosV2, MidStreamResetsFailEveryInFlightRequestTyped) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 29;
  plan.reset_prob = 1.0;  // every proxied connection dies at some phase
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  // Pipeline a burst per connection; when the reset lands, every request
  // still in flight must complete exactly once with a typed, retryable
  // transport error — no hangs, no lost callbacks.
  int failures = 0;
  for (int round = 0; round < 4; ++round) {
    AsyncClientOptions options;
    options.io_timeout = ticks::FromMillis(500);
    AsyncClient client(options);
    if (!client.Connect("127.0.0.1", proxy.port()).ok()) continue;

    constexpr int kBurst = 8;
    std::atomic<int> done_count{0};
    std::vector<Status> outcomes(kBurst);
    std::mutex outcomes_mu;
    for (int i = 0; i < kBurst; ++i) {
      client.SolveAsync(SolveMsg("alice", 61),
                        [&, i](Expected<SolveResponseMsg> result) {
                          std::lock_guard<std::mutex> lock(outcomes_mu);
                          outcomes[static_cast<std::size_t>(i)] =
                              result.ok() ? OkStatus() : result.status();
                          done_count.fetch_add(1);
                        });
    }
    for (int i = 0; i < 1000 && done_count.load() < kBurst; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(done_count.load(), kBurst) << "round " << round;
    std::lock_guard<std::mutex> lock(outcomes_mu);
    for (const Status& st : outcomes) {
      if (st.ok()) continue;
      ++failures;
      EXPECT_TRUE(ResilientClient::IsRetryable(st)) << st.ToString();
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(proxy.Stats().resets, 0u);
  proxy.Stop();

  // The server survived: clean direct v2 round-trip.
  AsyncClient direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ts.server.port()).ok());
  auto health = direct.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
}

TEST(NetChaosV2, FlippedBytesAreTypedOutcomesOnThePipelinedClient) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());
  ChaosPlan plan;
  plan.seed = 31;
  plan.flip_prob = 1.0;
  plan.max_flips = 3;
  plan.flip_window = 64;
  ChaosProxy proxy(plan, "127.0.0.1", ts.server.port());
  ASSERT_TRUE(proxy.Start().ok());

  // A flip in a response header desynchronizes the whole pipelined
  // stream: the decoder fails typed and every in-flight request completes
  // with that failure (kInvalidArgument), not a hang. A flip in a payload
  // byte may still decode — both are legal, crashes are not.
  int outcomes = 0;
  for (int i = 0; i < 8; ++i) {
    AsyncClientOptions options;
    options.io_timeout = ticks::FromSeconds(5);
    AsyncClient client(options);
    if (!client.Connect("127.0.0.1", proxy.port()).ok()) continue;
    auto solve = client.Solve(SolveMsg("alice", 62));
    ++outcomes;  // returned exactly once, ok or typed
    if (!solve.ok()) {
      EXPECT_NE(solve.status().code(), StatusCode::kOk);
    }
  }
  EXPECT_GT(outcomes, 0);
  EXPECT_GT(proxy.Stats().flipped_bytes, 0u);
  proxy.Stop();

  Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ts.server.port()).ok());
  auto health = direct.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
}

// ---- Mixed-version soak --------------------------------------------------

// One server, one v1 client thread and one pipelined v2 client thread
// hammering it concurrently. Version latching is per connection, so the
// streams must never interfere: zero protocol errors, every request a
// typed outcome.
TEST(NetChaosV2, MixedVersionSoakAgainstOneServer) {
  TestServer ts(Workers(2), Dispatchers(2));
  ASSERT_TRUE(ts.server.Start().ok());

  constexpr int kRounds = 100;
  // Seed the cache so the pipelined burst is hits: an unseeded burst of 64
  // identical cold problems would (correctly) overflow the tenant queue
  // with typed kWouldBlock backpressure, which is not what this test is
  // about.
  {
    Client seeder;
    ASSERT_TRUE(seeder.Connect("127.0.0.1", ts.server.port()).ok());
    for (int salt = 70; salt < 73; ++salt) {
      ASSERT_TRUE(seeder.Solve(SolveMsg("soak", salt)).ok());
    }
  }

  std::atomic<int> v1_failures{0};
  std::thread v1_thread([&] {
    Client client;
    if (!client.Connect("127.0.0.1", ts.server.port()).ok()) {
      v1_failures.fetch_add(kRounds);
      return;
    }
    for (int i = 0; i < kRounds; ++i) {
      auto solve = client.Solve(SolveMsg("soak", 70 + (i % 3)));
      if (!solve.ok()) v1_failures.fetch_add(1);
      if (i % 10 == 0 && !client.Health().ok()) v1_failures.fetch_add(1);
    }
  });

  std::atomic<int> v2_failures{0};
  std::thread v2_thread([&] {
    AsyncClient client;
    if (!client.Connect("127.0.0.1", ts.server.port()).ok()) {
      v2_failures.fetch_add(kRounds);
      return;
    }
    std::atomic<int> done_count{0};
    for (int i = 0; i < kRounds; ++i) {
      client.SolveAsync(SolveMsg("soak", 70 + (i % 3)),
                        [&](Expected<SolveResponseMsg> result) {
                          if (!result.ok()) v2_failures.fetch_add(1);
                          done_count.fetch_add(1);
                        });
    }
    for (int i = 0; i < 2000 && done_count.load() < kRounds; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (done_count.load() < kRounds) v2_failures.fetch_add(1000);
  });

  v1_thread.join();
  v2_thread.join();
  EXPECT_EQ(v1_failures.load(), 0);
  EXPECT_EQ(v2_failures.load(), 0);

  Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", ts.server.port()).ok());
  auto stats = direct.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->protocol_errors, 0u);
  EXPECT_GE(stats->frames_received, static_cast<std::uint64_t>(2 * kRounds));
}

}  // namespace
}  // namespace ss::net
