// Tests for the Fig. 6 optimal scheduler: known-optimal micro cases,
// dominance over the heuristic list scheduler, schedule validity, and
// tractability on the full tracker graph.
#include <gtest/gtest.h>

#include "graph/cost_model.hpp"
#include "graph/machine.hpp"
#include "graph/op_graph.hpp"
#include "graph/task_graph.hpp"
#include "regime/regime.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::CostModel;
using graph::MachineConfig;
using graph::TaskCost;
using graph::TaskGraph;
using sched::OptimalOptions;
using sched::OptimalScheduler;

constexpr RegimeId kR0 = RegimeId(0);

/// Builds a linear chain source -> t1 -> ... with given costs.
struct ChainFixture {
  TaskGraph graph;
  CostModel costs;
  std::vector<TaskId> tasks;

  explicit ChainFixture(const std::vector<Tick>& task_costs) {
    for (std::size_t i = 0; i < task_costs.size(); ++i) {
      tasks.push_back(
          graph.AddTask("t" + std::to_string(i), /*is_source=*/i == 0));
      costs.Set(kR0, tasks.back(), TaskCost::Serial(task_costs[i]));
      if (i > 0) {
        ChannelId ch = graph.AddChannel("c" + std::to_string(i), 100);
        graph.SetProducer(tasks[i - 1], ch);
        graph.AddConsumer(tasks[i], ch);
      }
    }
  }
};

TEST(OptimalSchedulerTest, ChainLatencyIsSumOfCosts) {
  ChainFixture fx({100, 200, 300});
  OptimalScheduler sched(fx.graph, fx.costs, CommModel::Free(),
                         MachineConfig::SingleNode(2));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->min_latency, 600);
}

TEST(OptimalSchedulerTest, ForkJoinUsesTaskParallelism) {
  // source(10) -> {a(100), b(100)} -> sink(10): with 2 procs the two middle
  // tasks overlap: latency = 10 + 100 + 10.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  TaskId b = g.AddTask("b");
  TaskId sink = g.AddTask("sink");
  ChannelId c0 = g.AddChannel("c0", 0);
  ChannelId ca = g.AddChannel("ca", 0);
  ChannelId cb = g.AddChannel("cb", 0);
  g.SetProducer(src, c0);
  g.AddConsumer(a, c0);
  g.AddConsumer(b, c0);
  g.SetProducer(a, ca);
  g.SetProducer(b, cb);
  g.AddConsumer(sink, ca);
  g.AddConsumer(sink, cb);
  costs.Set(kR0, src, TaskCost::Serial(10));
  costs.Set(kR0, a, TaskCost::Serial(100));
  costs.Set(kR0, b, TaskCost::Serial(100));
  costs.Set(kR0, sink, TaskCost::Serial(10));

  OptimalScheduler sched(g, costs, CommModel::Free(),
                         MachineConfig::SingleNode(2));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_latency, 120);

  // On one processor there is no overlap: latency = 220.
  OptimalScheduler uni(g, costs, CommModel::Free(),
                       MachineConfig::SingleNode(1));
  auto uni_result = uni.Schedule(kR0);
  ASSERT_TRUE(uni_result.ok());
  EXPECT_EQ(uni_result->min_latency, 220);
}

TEST(OptimalSchedulerTest, DataParallelVariantReducesLatency) {
  // One source, one heavy task with a 4-chunk variant. With 4 procs the
  // chunked variant wins: 10 + (5 + 100 + 5) vs 10 + 400.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId heavy = g.AddTask("heavy");
  ChannelId c0 = g.AddChannel("c0", 0);
  g.SetProducer(src, c0);
  g.AddConsumer(heavy, c0);
  costs.Set(kR0, src, TaskCost::Serial(10));
  TaskCost heavy_cost = TaskCost::Serial(400);
  heavy_cost.AddVariant(graph::DpVariant{"x4", 4, 100, 5, 5});
  costs.Set(kR0, heavy, std::move(heavy_cost));

  OptimalScheduler sched(g, costs, CommModel::Free(),
                         MachineConfig::SingleNode(4));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_latency, 120);
  // The chosen variant for the heavy task is the chunked one.
  EXPECT_EQ(result->best.iteration.variants()[heavy.index()], VariantId(1));
}

TEST(OptimalSchedulerTest, ChunkedVariantNotWorthItOnFewProcs) {
  // Same graph but 1 processor: serialized chunks cost 400 + 10 overhead,
  // so the serial variant (400) wins.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId heavy = g.AddTask("heavy");
  ChannelId c0 = g.AddChannel("c0", 0);
  g.SetProducer(src, c0);
  g.AddConsumer(heavy, c0);
  costs.Set(kR0, src, TaskCost::Serial(10));
  TaskCost heavy_cost = TaskCost::Serial(400);
  heavy_cost.AddVariant(graph::DpVariant{"x4", 4, 100, 5, 5});
  costs.Set(kR0, heavy, std::move(heavy_cost));

  OptimalScheduler sched(g, costs, CommModel::Free(),
                         MachineConfig::SingleNode(1));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_latency, 410);
  EXPECT_EQ(result->best.iteration.variants()[heavy.index()], VariantId(0));
}

TEST(OptimalSchedulerTest, CommunicationCostDiscouragesSpreading) {
  // fork-join with expensive inter-processor comm: staying on one proc
  // (220) beats paying 200 comm each way (120 + comm).
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  TaskId b = g.AddTask("b");
  TaskId sink = g.AddTask("sink");
  ChannelId c0 = g.AddChannel("c0", 1000);
  ChannelId ca = g.AddChannel("ca", 1000);
  ChannelId cb = g.AddChannel("cb", 1000);
  g.SetProducer(src, c0);
  g.AddConsumer(a, c0);
  g.AddConsumer(b, c0);
  g.SetProducer(a, ca);
  g.SetProducer(b, cb);
  g.AddConsumer(sink, ca);
  g.AddConsumer(sink, cb);
  costs.Set(kR0, src, TaskCost::Serial(10));
  costs.Set(kR0, a, TaskCost::Serial(100));
  costs.Set(kR0, b, TaskCost::Serial(100));
  costs.Set(kR0, sink, TaskCost::Serial(10));

  CommModel comm;
  comm.intra_latency = 500;  // same node but different proc is expensive
  comm.intra_bytes_per_us = 0;
  OptimalScheduler sched(g, costs, comm, MachineConfig::SingleNode(2));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_latency, 220);
  EXPECT_EQ(result->best.iteration.ProcsUsed(), 1);
}

TEST(OptimalSchedulerTest, SchedulesValidate) {
  ChainFixture fx({50, 100, 150, 70});
  const MachineConfig machine = MachineConfig::SingleNode(3);
  const CommModel comm;
  OptimalScheduler sched(fx.graph, fx.costs, comm, machine);
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  for (const auto& s : result->optimal) {
    graph::OpGraph og =
        graph::OpGraph::Expand(fx.graph, fx.costs, kR0, s.variants());
    EXPECT_TRUE(s.Validate(og, machine, comm).ok());
  }
}

TEST(OptimalSchedulerTest, NeverWorseThanListScheduler) {
  // Random-ish diamond graphs with mixed costs.
  for (int variant = 0; variant < 4; ++variant) {
    TaskGraph g;
    CostModel costs;
    TaskId src = g.AddTask("src", true);
    TaskId a = g.AddTask("a");
    TaskId b = g.AddTask("b");
    TaskId c = g.AddTask("c");
    TaskId sink = g.AddTask("sink");
    ChannelId c0 = g.AddChannel("c0", 10);
    ChannelId c1 = g.AddChannel("c1", 10);
    ChannelId c2 = g.AddChannel("c2", 10);
    ChannelId c3 = g.AddChannel("c3", 10);
    ChannelId c4 = g.AddChannel("c4", 10);
    g.SetProducer(src, c0);
    g.AddConsumer(a, c0);
    g.AddConsumer(b, c0);
    g.AddConsumer(c, c0);
    g.SetProducer(a, c1);
    g.SetProducer(b, c2);
    g.SetProducer(c, c3);
    g.AddConsumer(sink, c1);
    g.AddConsumer(sink, c2);
    g.AddConsumer(sink, c3);
    g.SetProducer(sink, c4);
    costs.Set(kR0, src, TaskCost::Serial(10 + variant));
    costs.Set(kR0, a, TaskCost::Serial(100 + 37 * variant));
    costs.Set(kR0, b, TaskCost::Serial(180 - 21 * variant));
    costs.Set(kR0, c, TaskCost::Serial(90 + 11 * variant));
    costs.Set(kR0, sink, TaskCost::Serial(25));

    const MachineConfig machine = MachineConfig::SingleNode(2);
    const CommModel comm;
    OptimalScheduler sched(g, costs, comm, machine);
    auto optimal = sched.Schedule(kR0);
    ASSERT_TRUE(optimal.ok());

    sched::ListScheduler list(comm, machine);
    auto heuristic = list.ScheduleBestVariant(g, costs, kR0);
    ASSERT_TRUE(heuristic.ok());
    EXPECT_LE(optimal->min_latency, heuristic->Latency())
        << "variant " << variant;
  }
}

TEST(OptimalSchedulerTest, CollectsMultipleOptimalSchedules) {
  // Two independent equal tasks after a source: many optimal placements.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  TaskId b = g.AddTask("b");
  ChannelId c0 = g.AddChannel("c0", 0);
  g.SetProducer(src, c0);
  g.AddConsumer(a, c0);
  g.AddConsumer(b, c0);
  costs.Set(kR0, src, TaskCost::Serial(10));
  costs.Set(kR0, a, TaskCost::Serial(50));
  costs.Set(kR0, b, TaskCost::Serial(50));

  OptimalScheduler sched(g, costs, CommModel::Free(),
                         MachineConfig::SingleNode(2));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->min_latency, 60);
  EXPECT_GE(result->optimal.size(), 1u);
  // All collected schedules achieve the same latency and are distinct.
  std::set<std::string> keys;
  for (const auto& s : result->optimal) {
    EXPECT_EQ(s.Latency(), result->min_latency);
    EXPECT_TRUE(keys.insert(s.CanonicalKey()).second);
  }
}

TEST(OptimalSchedulerTest, TrackerGraphAllRegimesTractable) {
  // The headline tractability claim: the full 5-task tracker graph with all
  // T4 variants, for every regime 1..8 models, on a 4-way SMP.
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  regime::RegimeSpace space(1, 8);
  tracker::PaperCostParams pcp;
  pcp.scale = 0.001;  // milliseconds instead of seconds; search is identical
  graph::CostModel costs = tracker::PaperCostModel(tg, space, pcp);

  OptimalScheduler sched(tg.graph, costs, CommModel(),
                         MachineConfig::SingleNode(4));
  Tick prev_latency = 0;
  for (RegimeId r : space.AllRegimes()) {
    auto result = sched.Schedule(r);
    ASSERT_TRUE(result.ok()) << "regime " << r.value();
    EXPECT_FALSE(result->budget_exhausted) << "regime " << r.value();
    EXPECT_GT(result->min_latency, 0);
    // More models never reduce the optimal latency.
    EXPECT_GE(result->min_latency, prev_latency) << "regime " << r.value();
    prev_latency = result->min_latency;
    // Throughput is defined and the pipelined form is at least as frequent
    // as one iteration per latency.
    EXPECT_LE(result->best.initiation_interval, result->min_latency);
  }
}

TEST(OptimalSchedulerTest, ScheduleWithVariantsPinsSelection) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  regime::RegimeSpace space(8, 8);
  tracker::PaperCostParams pcp;
  pcp.scale = 0.001;
  graph::CostModel costs = tracker::PaperCostModel(tg, space, pcp);

  std::vector<VariantId> serial_everywhere(tg.graph.task_count(),
                                           VariantId(0));
  OptimalScheduler sched(tg.graph, costs, CommModel(),
                         MachineConfig::SingleNode(4));
  auto pinned = sched.ScheduleWithVariants(kR0, serial_everywhere);
  ASSERT_TRUE(pinned.ok());
  auto free_choice = sched.Schedule(kR0);
  ASSERT_TRUE(free_choice.ok());
  // Forcing serial T4 cannot beat the free choice.
  EXPECT_GE(pinned->min_latency, free_choice->min_latency);
}

TEST(OptimalSchedulerTest, MissingCostEntryFails) {
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  ChannelId c0 = g.AddChannel("c0", 0);
  g.SetProducer(src, c0);
  g.AddConsumer(a, c0);
  costs.Set(kR0, src, TaskCost::Serial(10));  // no entry for `a`
  OptimalScheduler sched(g, costs, CommModel::Free(),
                         MachineConfig::SingleNode(2));
  auto result = sched.Schedule(kR0);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace ss
