// Tests for the parallel branch-and-bound solver: bit-identical results
// across thread counts (the determinism contract of docs/solver.md), a
// globally respected node budget, and schedule validity under parallel
// search. The whole suite also runs under TSan in CI.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "graph/machine.hpp"
#include "graph/op_graph.hpp"
#include "graph/synthetic.hpp"
#include "regime/regime.hpp"
#include "sched/optimal.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::MachineConfig;
using sched::OptimalOptions;
using sched::OptimalResult;
using sched::OptimalScheduler;

constexpr RegimeId kR0 = RegimeId(0);
// kSolverThreadsUnset rides along: the unset default must behave exactly
// like an explicit serial run.
constexpr int kThreadCounts[] = {sched::kSolverThreadsUnset, 1, 2, 4, 8};

/// Everything about a result that the determinism contract pins down:
/// min latency, the full reported set, and the chosen pipelined schedule.
struct ResultSignature {
  Tick min_latency = 0;
  std::vector<std::string> optimal_keys;  // in reported order
  Tick best_ii = 0;
  int best_rotation = 0;
  std::string best_key;

  explicit ResultSignature(const OptimalResult& r)
      : min_latency(r.min_latency),
        best_ii(r.best.initiation_interval),
        best_rotation(r.best.rotation),
        best_key(r.best.iteration.CanonicalKey()) {
    for (const auto& s : r.optimal) optimal_keys.push_back(s.CanonicalKey());
  }

  bool operator==(const ResultSignature& o) const {
    return min_latency == o.min_latency && optimal_keys == o.optimal_keys &&
           best_ii == o.best_ii && best_rotation == o.best_rotation &&
           best_key == o.best_key;
  }
};

/// Small enough that every search completes well within the node budget:
/// determinism across thread counts is only guaranteed for non-exhausted
/// searches, and an exhausted one would make the test flaky by design.
graph::SyntheticProblem LayeredProblem(std::uint64_t seed) {
  Rng rng(seed);
  graph::SyntheticOptions gen;
  gen.layers = 2;
  gen.max_width = 2;
  gen.max_chunks = 3;
  return graph::MakeLayered(rng, gen);
}

TEST(ParallelOptimalTest, LatencyModeIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {11u, 42u, 97u}) {
    graph::SyntheticProblem dag = LayeredProblem(seed);
    ASSERT_TRUE(dag.graph.Validate().ok());
    CommModel comm;
    comm.intra_latency = 5;
    OptimalScheduler sched(dag.graph, dag.costs, comm,
                           MachineConfig::SingleNode(2));

    std::vector<ResultSignature> signatures;
    for (int threads : kThreadCounts) {
      OptimalOptions opts;
      opts.solver_threads = threads;
      auto result = sched.Schedule(kR0, opts);
      ASSERT_TRUE(result.ok())
          << "seed " << seed << " threads " << threads << ": "
          << result.status().ToString();
      ASSERT_FALSE(result->budget_exhausted);
      signatures.emplace_back(*result);
    }
    for (std::size_t i = 1; i < signatures.size(); ++i) {
      EXPECT_TRUE(signatures[i] == signatures[0])
          << "seed " << seed << ": thread count " << kThreadCounts[i]
          << " produced a different result than 1 thread";
    }
  }
}

TEST(ParallelOptimalTest, ThroughputModeIdenticalAcrossThreadCounts) {
  graph::SyntheticProblem dag = LayeredProblem(7);
  ASSERT_TRUE(dag.graph.Validate().ok());
  OptimalScheduler sched(dag.graph, dag.costs, CommModel(),
                         MachineConfig::SingleNode(2));
  auto baseline = sched.Schedule(kR0);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->budget_exhausted);
  const Tick bound = baseline->min_latency + baseline->min_latency / 2;

  std::vector<ResultSignature> signatures;
  for (int threads : kThreadCounts) {
    OptimalOptions opts;
    opts.solver_threads = threads;
    auto result = sched.ScheduleForThroughput(kR0, bound, opts);
    ASSERT_TRUE(result.ok())
        << "threads " << threads << ": " << result.status().ToString();
    ASSERT_FALSE(result->budget_exhausted);
    EXPECT_LE(result->best.Latency(), bound);
    signatures.emplace_back(*result);
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0])
        << "thread count " << kThreadCounts[i]
        << " produced a different throughput-mode result than 1 thread";
  }
}

TEST(ParallelOptimalTest, KioskGraphIdenticalAcrossThreadCounts) {
  tracker::KioskGraph kg = tracker::BuildKioskGraph();
  regime::RegimeSpace space(1, 8);
  tracker::PaperCostParams pcp;
  pcp.scale = 0.001;
  graph::CostModel cm = tracker::PaperKioskCostModel(kg, space, pcp);
  OptimalScheduler sched(kg.tracker.graph, cm, CommModel(),
                         MachineConfig::SingleNode(4));
  // The heaviest regime (8 models): the full variant odometer.
  const RegimeId regime = space.FromState(8);

  std::vector<ResultSignature> signatures;
  for (int threads : kThreadCounts) {
    OptimalOptions opts;
    opts.solver_threads = threads;
    auto result = sched.Schedule(regime, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(result->budget_exhausted);
    signatures.emplace_back(*result);
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0])
        << "thread count " << kThreadCounts[i] << " diverged on the kiosk";
  }
}

TEST(ParallelOptimalTest, PruningConfigsStayDeterministicAcrossThreads) {
  // Every pruning configuration must uphold the determinism contract on
  // its own: the reported set may legitimately differ *between* configs
  // (each symmetry rule picks the representative of its class), but for a
  // fixed config it may never differ between thread counts.
  graph::SyntheticProblem dag = LayeredProblem(23);
  ASSERT_TRUE(dag.graph.Validate().ok());
  CommModel comm;
  comm.intra_latency = 5;
  OptimalScheduler sched(dag.graph, dag.costs, comm,
                         MachineConfig::SingleNode(4));
  for (int config = 0; config < 6; ++config) {
    std::vector<ResultSignature> signatures;
    for (int threads : {1, 4}) {
      OptimalOptions opts;
      opts.solver_threads = threads;
      opts.pruning.proc_symmetry = config != 1;
      opts.pruning.ready_symmetry = config != 2;
      opts.pruning.empty_node_symmetry = config != 3;
      opts.pruning.sink_dominance = config != 4;
      opts.pruning.memo = config != 5;
      opts.pruning.seed_incumbent = config != 5;
      auto result = sched.Schedule(kR0, opts);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      signatures.emplace_back(*result);
    }
    EXPECT_TRUE(signatures[1] == signatures[0])
        << "pruning config " << config << " diverged across threads";
  }
}

// Satellite of the work-stealing rework: t1 vs t4 vs t8 exact-equal
// results over the property-sweep graph families (chain / fork-join /
// layered, several seeds each). Runs under TSan in CI like the rest of
// this suite, so the steal/donation protocol is raced while the contract
// is checked.
TEST(ParallelOptimalTest, PropertySweepIdenticalAcrossThreadCounts) {
  struct Family {
    const char* name;
    graph::SyntheticProblem (*make)(Rng&, const graph::SyntheticOptions&);
  };
  const Family families[] = {
      {"chain", [](Rng& rng, const graph::SyntheticOptions& gen) {
         return graph::MakeChain(rng, 4, gen);
       }},
      {"forkjoin", [](Rng& rng, const graph::SyntheticOptions& gen) {
         return graph::MakeForkJoin(rng, 3, gen);
       }},
      {"layered", [](Rng& rng, const graph::SyntheticOptions& gen) {
         return graph::MakeLayered(rng, gen);
       }},
  };
  for (const Family& family : families) {
    for (std::uint64_t seed : {1u, 13u, 31u}) {
      Rng rng(seed);
      graph::SyntheticOptions gen;
      gen.layers = 2;
      gen.max_width = 2;
      gen.max_chunks = 2;
      graph::SyntheticProblem dag = family.make(rng, gen);
      ASSERT_TRUE(dag.graph.Validate().ok());
      CommModel comm;
      comm.intra_latency = 7;
      OptimalScheduler sched(dag.graph, dag.costs, comm,
                             MachineConfig::SingleNode(2));
      std::vector<ResultSignature> signatures;
      for (int threads : {1, 4, 8}) {
        OptimalOptions opts;
        opts.solver_threads = threads;
        auto result = sched.Schedule(kR0, opts);
        ASSERT_TRUE(result.ok())
            << family.name << " seed " << seed << " threads " << threads
            << ": " << result.status().ToString();
        ASSERT_FALSE(result->budget_exhausted);
        signatures.emplace_back(*result);
      }
      for (std::size_t i = 1; i < signatures.size(); ++i) {
        EXPECT_TRUE(signatures[i] == signatures[0])
            << family.name << " seed " << seed
            << " diverged across thread counts";
      }
    }
  }
}

// Stress: many solves racing on the shared solver pool, each itself
// multi-threaded with donation and stealing active. Every solve of the
// same problem must agree with the serial baseline bit for bit. (TSan
// covers the deque/memo/incumbent protocol here.)
TEST(ParallelOptimalTest, ConcurrentSolvesStayDeterministic) {
  graph::SyntheticProblem dag = LayeredProblem(42);
  ASSERT_TRUE(dag.graph.Validate().ok());
  CommModel comm;
  comm.intra_latency = 5;
  OptimalScheduler sched(dag.graph, dag.costs, comm,
                         MachineConfig::SingleNode(2));
  OptimalOptions serial;
  auto base = sched.Schedule(kR0, serial);
  ASSERT_TRUE(base.ok());
  const ResultSignature want(*base);

  constexpr int kSolvers = 6;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kSolvers, 0);
  std::vector<int> failures(kSolvers, 0);
  threads.reserve(kSolvers);
  for (int t = 0; t < kSolvers; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        OptimalOptions opts;
        opts.solver_threads = 4;
        auto result = sched.Schedule(kR0, opts);
        if (!result.ok()) {
          ++failures[t];
          continue;
        }
        if (!(ResultSignature(*result) == want)) ++mismatches[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kSolvers; ++t) {
    EXPECT_EQ(failures[t], 0) << "solver thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "solver thread " << t;
  }
}

TEST(ParallelOptimalTest, ParallelSchedulesValidate) {
  graph::SyntheticProblem dag = LayeredProblem(5);
  ASSERT_TRUE(dag.graph.Validate().ok());
  CommModel comm;
  comm.intra_latency = 3;
  const MachineConfig machine = MachineConfig::SingleNode(3);
  OptimalScheduler sched(dag.graph, dag.costs, comm, machine);
  OptimalOptions opts;
  opts.solver_threads = 4;
  auto result = sched.Schedule(kR0, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->optimal.size(), 1u);
  std::set<std::string> keys;
  for (const auto& s : result->optimal) {
    EXPECT_EQ(s.Latency(), result->min_latency);
    EXPECT_TRUE(keys.insert(s.CanonicalKey()).second) << "duplicate reported";
    graph::OpGraph og = graph::OpGraph::Expand(dag.graph, dag.costs, kR0,
                                               s.variants());
    EXPECT_TRUE(s.Validate(og, machine, comm).ok());
  }
}

TEST(ParallelOptimalTest, NodeBudgetIsRespectedGloballyAcrossWorkers) {
  // A graph whose full search needs far more nodes than the budget. The
  // nonzero communication latency matters: the lower bounds are comm-free,
  // so real makespans exceed them and pruning bites late — forcing a wide
  // search even on a modest graph.
  Rng rng(23);
  graph::SyntheticOptions gen;
  gen.layers = 5;
  gen.max_width = 3;
  graph::SyntheticProblem dag = graph::MakeLayered(rng, gen);
  ASSERT_TRUE(dag.graph.Validate().ok());
  CommModel comm;
  comm.intra_latency = 40;
  comm.intra_bytes_per_us = 50;
  OptimalScheduler sched(dag.graph, dag.costs, comm,
                         MachineConfig::SingleNode(3));

  OptimalOptions unbounded;
  auto full = sched.Schedule(kR0, unbounded);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->budget_exhausted);
  ASSERT_GT(full->nodes_explored, 4000u) << "problem too small to exhaust";

  for (int threads : {1, 8}) {
    OptimalOptions opts;
    opts.solver_threads = threads;
    opts.max_nodes = full->nodes_explored / 2;
    auto result = sched.Schedule(kR0, opts);
    // The budget may or may not leave a complete schedule; both outcomes
    // must respect the global cap.
    if (result.ok()) {
      EXPECT_TRUE(result->budget_exhausted);
      EXPECT_LE(result->nodes_explored, opts.max_nodes) << threads;
      // Whatever was found within the budget is a real schedule, so it can
      // never beat the true optimum.
      EXPECT_GE(result->min_latency, full->min_latency);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    }
  }
}

TEST(ParallelOptimalTest, CompletePrefixesChargeTheBudgetOnce) {
  // A 3-op chain on one processor has exactly one schedule, and the search
  // visits each of its 4 prefixes (empty through complete) exactly once —
  // so nodes_explored must be exactly 4. This also pins down that the
  // heuristic seed (here provably optimal: the root lower bound equals the
  // list-scheduler makespan) suppresses the memoized bound-finding phase,
  // so the chain is searched in a single collection pass, and that donated
  // prefix replays never re-charge the budget.
  graph::TaskGraph g;
  const TaskId a = g.AddTask("a", true);
  const TaskId b = g.AddTask("b");
  const TaskId c = g.AddTask("c");
  const ChannelId ab = g.AddChannel("ab", 0);
  const ChannelId bc = g.AddChannel("bc", 0);
  g.SetProducer(a, ab);
  g.AddConsumer(b, ab);
  g.SetProducer(b, bc);
  g.AddConsumer(c, bc);
  ASSERT_TRUE(g.Validate().ok());
  graph::CostModel costs;
  costs.Set(kR0, a, graph::TaskCost::Serial(30));
  costs.Set(kR0, b, graph::TaskCost::Serial(40));
  costs.Set(kR0, c, graph::TaskCost::Serial(50));
  OptimalScheduler sched(g, costs, CommModel(),
                         MachineConfig::SingleNode(1));
  for (int threads : {1, 4}) {
    OptimalOptions opts;
    opts.solver_threads = threads;
    auto result = sched.Schedule(kR0, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->min_latency, 120);
    EXPECT_EQ(result->seed_makespan, 120);
    EXPECT_EQ(result->nodes_explored, 4u) << "threads " << threads;
  }
}

TEST(ParallelOptimalTest, ZeroThreadsMeansHardwareConcurrency) {
  // solver_threads = 0 resolves to the hardware thread count; results must
  // still match the serial run exactly.
  graph::SyntheticProblem dag = LayeredProblem(3);
  ASSERT_TRUE(dag.graph.Validate().ok());
  OptimalScheduler sched(dag.graph, dag.costs, CommModel(),
                         MachineConfig::SingleNode(2));
  OptimalOptions serial;
  auto base = sched.Schedule(kR0, serial);
  ASSERT_TRUE(base.ok());
  OptimalOptions autodetect;
  autodetect.solver_threads = 0;
  auto result = sched.Schedule(kR0, autodetect);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ResultSignature(*result) == ResultSignature(*base));
}

}  // namespace
}  // namespace ss
