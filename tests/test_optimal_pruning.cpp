// Soundness property tests for the branch-and-bound search reductions.
//
// Every PruningOptions rule claims to preserve the minimal latency. The
// oracle here is the prune-free search itself: for a sweep of random
// graphs, machines and communication models (including nonzero intra-node
// communication, the adversarial case for the processor-interchange rule),
// the fully-pruned solve must report exactly the minimum the unpruned
// enumeration finds. Every reported schedule must additionally pass the
// independent static verifier, which shares no legality bookkeeping with
// the solver.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "graph/graph_io.hpp"
#include "graph/machine.hpp"
#include "graph/op_graph.hpp"
#include "graph/synthetic.hpp"
#include "sched/optimal.hpp"
#include "verify/verifier.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::MachineConfig;
using graph::SyntheticOptions;
using graph::SyntheticProblem;
using sched::OptimalOptions;
using sched::OptimalScheduler;
using sched::PruningOptions;

constexpr RegimeId kR0 = RegimeId(0);

PruningOptions AllOff() {
  PruningOptions p;
  p.proc_symmetry = false;
  p.ready_symmetry = false;
  p.empty_node_symmetry = false;
  p.sink_dominance = false;
  p.memo = false;
  p.seed_incumbent = false;
  return p;
}

struct SweepCase {
  std::string label;
  SyntheticProblem problem;
  MachineConfig machine;
  CommModel comm;
};

std::vector<SweepCase> BuildSweep() {
  std::vector<SweepCase> cases;
  const MachineConfig machines[] = {
      MachineConfig::SingleNode(3),
      MachineConfig::Cluster(2, 2),
  };
  // Free comm isolates order/assignment symmetry; the nonzero intra model
  // is the adversarial case for merging same-node processors that still
  // hold live producers; the cluster default adds inter-node cost.
  CommModel intra_costly;
  intra_costly.intra_latency = 7;
  intra_costly.inter_latency = 25;
  const CommModel comms[] = {CommModel::Free(), intra_costly, CommModel()};
  for (int seed : {3, 17, 29, 41}) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 5);
    SyntheticOptions gen;
    gen.layers = 2;
    gen.max_width = 2;
    gen.max_chunks = 2;
    SyntheticProblem problems[] = {
        graph::MakeChain(rng, 4, gen),
        graph::MakeForkJoin(rng, 3, gen),
        graph::MakeLayered(rng, gen),
    };
    for (auto& problem : problems) {
      const auto& machine =
          machines[static_cast<std::size_t>(seed) % std::size(machines)];
      const auto& comm =
          comms[static_cast<std::size_t>(seed) % std::size(comms)];
      cases.push_back(SweepCase{
          problem.family + "/seed" + std::to_string(seed),
          std::move(problem), machine, comm});
    }
  }
  return cases;
}

TEST(OptimalPruningTest, PrunedSearchMatchesPruneFreeReference) {
  for (const SweepCase& c : BuildSweep()) {
    SCOPED_TRACE(c.label);
    OptimalScheduler solver(c.problem.graph, c.problem.costs, c.comm,
                            c.machine);

    OptimalOptions reference;
    reference.pruning = AllOff();
    reference.max_nodes = 30'000'000;
    auto unpruned = solver.Schedule(kR0, reference);
    ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();
    ASSERT_FALSE(unpruned->budget_exhausted) << "reference budget too small";

    auto pruned = solver.Schedule(kR0, OptimalOptions{});
    ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
    ASSERT_FALSE(pruned->budget_exhausted);

    // The reductions may choose different representatives among the ties,
    // but the minimum itself must be exact.
    EXPECT_EQ(pruned->min_latency, unpruned->min_latency);
    EXPECT_LE(pruned->nodes_explored, unpruned->nodes_explored);
  }
}

TEST(OptimalPruningTest, EachRuleAloneMatchesPruneFreeReference) {
  // Isolate every rule: a bug in one must not hide behind another rule
  // pruning the same subtree first.
  for (const SweepCase& c : BuildSweep()) {
    OptimalScheduler solver(c.problem.graph, c.problem.costs, c.comm,
                            c.machine);
    OptimalOptions reference;
    reference.pruning = AllOff();
    reference.max_nodes = 30'000'000;
    auto unpruned = solver.Schedule(kR0, reference);
    ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();
    ASSERT_FALSE(unpruned->budget_exhausted);

    for (int rule = 0; rule < 6; ++rule) {
      SCOPED_TRACE(c.label + " rule " + std::to_string(rule));
      OptimalOptions opt;
      opt.pruning = AllOff();
      switch (rule) {
        case 0: opt.pruning.proc_symmetry = true; break;
        case 1: opt.pruning.ready_symmetry = true; break;
        case 2: opt.pruning.empty_node_symmetry = true; break;
        case 3: opt.pruning.sink_dominance = true; break;
        case 4: opt.pruning.memo = true; break;
        case 5: opt.pruning.seed_incumbent = true; break;
      }
      opt.max_nodes = 30'000'000;
      auto result = solver.Schedule(kR0, opt);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_FALSE(result->budget_exhausted);
      EXPECT_EQ(result->min_latency, unpruned->min_latency);
    }
  }
}

TEST(OptimalPruningTest, ReportedSchedulesSurviveIndependentVerifier) {
  for (const SweepCase& c : BuildSweep()) {
    SCOPED_TRACE(c.label);
    OptimalScheduler solver(c.problem.graph, c.problem.costs, c.comm,
                            c.machine);
    auto result = solver.Schedule(kR0, OptimalOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    graph::ProblemSpec spec;
    spec.graph = c.problem.graph;
    spec.costs = c.problem.costs;
    spec.machine = c.machine;
    spec.comm = c.comm;
    spec.regime_count = 1;
    const verify::ScheduleVerifier verifier(spec, kR0);
    const auto artifact =
        verifier.VerifyArtifact(result->best, result->min_latency);
    EXPECT_TRUE(artifact.clean()) << artifact.ToTable();
    ASSERT_FALSE(result->optimal.empty());
    for (const auto& s : result->optimal) {
      EXPECT_EQ(s.Latency(), result->min_latency);
      const auto report = verifier.VerifyIteration(s);
      EXPECT_TRUE(report.ok()) << report.ToTable();
    }
  }
}

}  // namespace
}  // namespace ss
