// Property-based tests over randomized inputs:
//  * random layered DAGs: the exhaustive scheduler never loses to the list
//    heuristic, always meets its lower bounds, and its schedules validate;
//  * pipeline composition: the computed initiation interval is collision-
//    free under brute-force expansion, and II-1 always collides (minimality
//    within the rotation);
//  * occupancy analysis: predicted channel bounds hold in the deterministic
//    replay and in the real scheduled runner.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "graph/op_graph.hpp"
#include "graph/synthetic.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/naive.hpp"
#include "sched/occupancy.hpp"
#include "sched/optimal.hpp"
#include "sched/pipeline.hpp"
#include "sim/schedule_executor.hpp"
#include "verify/verifier.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::CostModel;
using graph::MachineConfig;
using graph::OpGraph;
using graph::TaskCost;
using graph::TaskGraph;
using sched::IterationSchedule;
using sched::PipelineComposer;
using sched::ScheduleEntry;

constexpr RegimeId kR0 = RegimeId(0);

class RandomDagProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagProperty, OptimalSoundAndDominant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  graph::SyntheticOptions gen;
  gen.layers = 2 + static_cast<int>(rng.NextBelow(2));
  graph::SyntheticProblem dag = [&] {
    switch (GetParam() % 3) {
      case 0: return graph::MakeChain(rng, 3 + gen.layers, gen);
      case 1: return graph::MakeForkJoin(
          rng, 2 + static_cast<int>(rng.NextBelow(3)), gen);
      default: return graph::MakeLayered(rng, gen);
    }
  }();
  ASSERT_TRUE(dag.graph.Validate().ok()) << dag.family;

  const MachineConfig machine =
      MachineConfig::SingleNode(2 + static_cast<int>(rng.NextBelow(3)));
  CommModel comm;
  comm.intra_latency = static_cast<Tick>(rng.NextBelow(20));

  sched::OptimalScheduler optimal(dag.graph, dag.costs, comm, machine);
  sched::OptimalOptions opts;
  opts.max_nodes = 5'000'000;
  auto result = optimal.Schedule(kR0, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->budget_exhausted) GTEST_SKIP() << "search budget hit";

  // Property 1: never worse than the heuristic.
  sched::ListScheduler list(comm, machine);
  auto heuristic = list.ScheduleBestVariant(dag.graph, dag.costs, kR0);
  ASSERT_TRUE(heuristic.ok());
  EXPECT_LE(result->min_latency, heuristic->Latency());

  // Property 2: meets lower bounds for the chosen variant expansion.
  OpGraph og = OpGraph::Expand(dag.graph, dag.costs, kR0,
                               result->best.iteration.variants());
  EXPECT_GE(result->min_latency, og.CriticalPath());
  EXPECT_GE(result->min_latency,
            (og.TotalWork() + machine.total_procs() - 1) /
                machine.total_procs());

  // Property 3: every collected schedule validates and has the minimal
  // latency.
  for (const auto& s : result->optimal) {
    OpGraph sog = OpGraph::Expand(dag.graph, dag.costs, kR0, s.variants());
    EXPECT_TRUE(s.Validate(sog, machine, comm).ok());
    EXPECT_EQ(s.Latency(), result->min_latency);
  }

  // Property 4: the independent static verifier (which shares no code with
  // the solver's legality bookkeeping) agrees: the solver's artifact is
  // clean, every collected iteration verifies, and so does the heuristic
  // composition.
  graph::ProblemSpec spec;
  spec.graph = dag.graph;
  spec.costs = dag.costs;
  spec.machine = machine;
  spec.comm = comm;
  spec.regime_count = 1;
  const verify::ScheduleVerifier verifier(spec, kR0);
  const auto artifact_report =
      verifier.VerifyArtifact(result->best, result->min_latency);
  EXPECT_TRUE(artifact_report.clean()) << artifact_report.ToTable();
  for (const auto& s : result->optimal) {
    EXPECT_TRUE(verifier.VerifyIteration(s).ok())
        << verifier.VerifyIteration(s).ToTable();
  }
  const auto composed =
      PipelineComposer::Compose(*heuristic, machine.total_procs());
  EXPECT_TRUE(verifier.Verify(composed).ok())
      << verifier.Verify(composed).ToTable();

  // Property 5: the pipelined composition is collision-free (checked by
  // the brute-force expander below) and its replay is uniform.
  sim::ScheduleRunOptions run;
  run.frames = 6;
  auto replay = sim::RunSchedule(result->best, og, run);
  EXPECT_NEAR(replay.metrics.uniformity_cov, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, ::testing::Range(0, 24));

// ---- pipeline minimality ---------------------------------------------------------

/// Brute-force check: does replaying `iter` with (ii, rotation) produce any
/// processor overlap within `horizon` iterations?
bool HasCollision(const IterationSchedule& iter, int procs, int rotation,
                  Tick ii, int horizon) {
  struct Busy {
    int proc;
    Tick start;
    Tick end;
  };
  std::vector<Busy> intervals;
  for (int k = 0; k < horizon; ++k) {
    for (const auto& e : iter.entries()) {
      const int proc = (e.proc.value() + k * rotation) % procs;
      const Tick start = e.start + static_cast<Tick>(k) * ii;
      intervals.push_back({proc, start, start + e.duration});
    }
  }
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < intervals.size(); ++j) {
      if (intervals[i].proc != intervals[j].proc) continue;
      if (intervals[i].start < intervals[j].end &&
          intervals[j].start < intervals[i].end) {
        return true;
      }
    }
  }
  return false;
}

class PipelineMinimality : public ::testing::TestWithParam<int> {};

TEST_P(PipelineMinimality, IntervalIsCollisionFreeAndTight) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  // Random iteration schedule: ops placed back-to-back on random procs.
  const int procs = 2 + static_cast<int>(rng.NextBelow(3));
  const int ops = 3 + static_cast<int>(rng.NextBelow(5));
  std::vector<Tick> proc_free(static_cast<std::size_t>(procs), 0);
  std::vector<ScheduleEntry> entries;
  for (int i = 0; i < ops; ++i) {
    const int p = static_cast<int>(rng.NextBelow(procs));
    const Tick dur = static_cast<Tick>(rng.NextInRange(5, 60));
    entries.push_back(ScheduleEntry{i, ProcId(p), proc_free[p], dur});
    proc_free[p] += dur +
                    static_cast<Tick>(rng.NextBelow(2) ? 0 : 7);  // gaps too
  }
  IterationSchedule iter({}, std::move(entries));

  for (int rotation = 0; rotation < procs; ++rotation) {
    const Tick ii =
        PipelineComposer::MinInitiationInterval(iter, procs, rotation);
    const int horizon =
        static_cast<int>(iter.Latency() / std::max<Tick>(1, ii)) + procs + 2;
    EXPECT_FALSE(HasCollision(iter, procs, rotation, ii, horizon))
        << "rotation " << rotation << " ii " << ii;
    if (ii > 1) {
      EXPECT_TRUE(HasCollision(iter, procs, rotation, ii - 1, horizon))
          << "rotation " << rotation << " ii " << ii
          << " is not minimal";
    }

    // The static verifier re-derives the same minimal interval through a
    // different algorithm (binary search over a pairwise congruence
    // predicate instead of replay), and its window-based collision test
    // agrees with the brute-force expansion around the minimum.
    EXPECT_EQ(verify::ScheduleVerifier::MinConflictFreeInterval(iter, procs,
                                                                rotation),
              ii)
        << "rotation " << rotation;
    for (const Tick probe : {ii - 1, ii, ii + 1}) {
      if (probe < 1) continue;
      EXPECT_EQ(
          verify::ScheduleVerifier::HasCollision(iter, procs, rotation,
                                                 probe),
          HasCollision(iter, procs, rotation, probe, horizon))
          << "rotation " << rotation << " probe ii " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineMinimality, ::testing::Range(0, 20));

// ---- occupancy --------------------------------------------------------------------

TEST(OccupancyTest, BoundHoldsInReplay) {
  // Chain src -> a -> b with a slow downstream: items accumulate exactly as
  // predicted.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  TaskId b = g.AddTask("b");
  ChannelId c0 = g.AddChannel("c0", 100);
  ChannelId c1 = g.AddChannel("c1", 100);
  g.SetProducer(src, c0);
  g.AddConsumer(a, c0);
  g.SetProducer(a, c1);
  g.AddConsumer(b, c1);
  costs.Set(kR0, src, TaskCost::Serial(10));
  costs.Set(kR0, a, TaskCost::Serial(100));
  costs.Set(kR0, b, TaskCost::Serial(100));

  const MachineConfig machine = MachineConfig::SingleNode(3);
  sched::OptimalScheduler sched(g, costs, CommModel::Free(), machine);
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  OpGraph og =
      OpGraph::Expand(g, costs, kR0, result->best.iteration.variants());
  auto report = sched::AnalyzeOccupancy(g, og, result->best);
  ASSERT_EQ(report.channels.size(), 2u);
  // Lifetime of c0: from src end to a end; at least one item; bounded by
  // overlap depth.
  for (const auto& ch : report.channels) {
    EXPECT_GE(ch.max_items, 1u);
    EXPECT_LE(ch.max_items, 4u);
  }
  EXPECT_EQ(report.required_capacity,
            std::max(report.channels[0].max_items,
                     report.channels[1].max_items));
}

TEST(OccupancyTest, FasterScheduleNeedsFewerItems) {
  // The same graph pipelined naively (big lifetime) vs optimally.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  TaskId b = g.AddTask("b");
  ChannelId c0 = g.AddChannel("c0", 100);
  ChannelId c1 = g.AddChannel("c1", 100);
  g.SetProducer(src, c0);
  g.AddConsumer(a, c0);
  g.SetProducer(a, c1);
  g.AddConsumer(b, c1);
  costs.Set(kR0, src, TaskCost::Serial(10));
  TaskCost ac = TaskCost::Serial(400);
  ac.AddVariant(graph::DpVariant{"x4", 4, 100, 2, 2});
  costs.Set(kR0, a, std::move(ac));
  costs.Set(kR0, b, TaskCost::Serial(50));

  const MachineConfig machine = MachineConfig::SingleNode(4);
  std::vector<VariantId> serial(g.task_count(), VariantId(0));
  OpGraph og_serial = OpGraph::Expand(g, costs, kR0, serial);
  auto naive = sched::NaivePipelineSchedule(og_serial, machine);
  auto naive_report = sched::AnalyzeOccupancy(g, og_serial, naive);

  sched::OptimalScheduler sched(g, costs, CommModel::Free(), machine);
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  OpGraph og =
      OpGraph::Expand(g, costs, kR0, result->best.iteration.variants());
  auto opt_report = sched::AnalyzeOccupancy(g, og, result->best);

  EXPECT_LT(result->min_latency, naive.Latency());
  EXPECT_LE(opt_report.total_items, naive_report.total_items);
}

TEST(OccupancyTest, OutputChannelsReportZero) {
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  ChannelId out = g.AddChannel("out", 100);
  g.SetProducer(src, out);
  costs.Set(kR0, src, TaskCost::Serial(10));
  std::vector<VariantId> serial(g.task_count(), VariantId(0));
  OpGraph og = OpGraph::Expand(g, costs, kR0, serial);
  auto naive = sched::SingleProcessorSchedule(og,
                                              MachineConfig::SingleNode(1));
  auto report = sched::AnalyzeOccupancy(g, og, naive);
  ASSERT_EQ(report.channels.size(), 1u);
  EXPECT_EQ(report.channels[0].max_items, 0u);
}

}  // namespace
}  // namespace ss
