// Tests for constrained dynamism: regime space, detection, arrival
// timelines, the pre-computed schedule table, and the regime manager's
// amortization behaviour (paper §2, §3.4).
#include <gtest/gtest.h>

#include "regime/arrivals.hpp"
#include "regime/manager.hpp"
#include "regime/regime.hpp"
#include "regime/schedule_table.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::regime {
namespace {

// ---- regime space ---------------------------------------------------------------

TEST(RegimeSpaceTest, MappingAndClamping) {
  RegimeSpace space(1, 5);
  EXPECT_EQ(space.size(), 5u);
  EXPECT_EQ(space.FromState(1), RegimeId(0));
  EXPECT_EQ(space.FromState(5), RegimeId(4));
  EXPECT_EQ(space.FromState(0), RegimeId(0));    // clamped
  EXPECT_EQ(space.FromState(100), RegimeId(4));  // clamped
  EXPECT_EQ(space.ToState(RegimeId(2)), 3);
  EXPECT_EQ(space.Name(RegimeId(0)), "state=1");
  EXPECT_EQ(space.AllRegimes().size(), 5u);
}

TEST(RegimeDetectorTest, ReportsOnlyChanges) {
  RegimeSpace space(1, 8);
  RegimeDetector detector(space, 2);
  EXPECT_EQ(detector.current(), space.FromState(2));
  EXPECT_FALSE(detector.Observe(2).valid());   // no change
  RegimeId next = detector.Observe(5);
  EXPECT_TRUE(next.valid());
  EXPECT_EQ(next, space.FromState(5));
  EXPECT_FALSE(detector.Observe(5).valid());
}

// ---- timelines -------------------------------------------------------------------

TEST(StateTimelineTest, StepFunction) {
  StateTimeline tl(1, {{100, 3}, {200, 2}});
  EXPECT_EQ(tl.At(0), 1);
  EXPECT_EQ(tl.At(99), 1);
  EXPECT_EQ(tl.At(100), 3);
  EXPECT_EQ(tl.At(150), 3);
  EXPECT_EQ(tl.At(500), 2);
  EXPECT_EQ(tl.ChangesBefore(150), 1u);
  EXPECT_EQ(tl.ChangesBefore(1000), 2u);
}

TEST(StateTimelineTest, BirthDeathDeterministicPerSeed) {
  Rng a(5), b(5);
  auto t1 = StateTimeline::BirthDeath(a, ticks::FromSeconds(600),
                                      ticks::FromSeconds(30),
                                      ticks::FromSeconds(60), 1, 1, 8);
  auto t2 = StateTimeline::BirthDeath(b, ticks::FromSeconds(600),
                                      ticks::FromSeconds(30),
                                      ticks::FromSeconds(60), 1, 1, 8);
  EXPECT_EQ(t1.changes().size(), t2.changes().size());
  for (std::size_t i = 0; i < t1.changes().size(); ++i) {
    EXPECT_EQ(t1.changes()[i].at, t2.changes()[i].at);
    EXPECT_EQ(t1.changes()[i].state, t2.changes()[i].state);
  }
}

TEST(StateTimelineTest, BirthDeathStaysInRange) {
  Rng rng(7);
  auto tl = StateTimeline::BirthDeath(rng, ticks::FromSeconds(3600),
                                      ticks::FromSeconds(10),
                                      ticks::FromSeconds(40), 1, 1, 8);
  for (const auto& c : tl.changes()) {
    EXPECT_GE(c.state, 1);
    EXPECT_LE(c.state, 8);
  }
  // A busy hour sees plenty of changes (constrained, not static).
  EXPECT_GT(tl.changes().size(), 10u);
}

// ---- schedule table + manager -----------------------------------------------------

class TableFixture : public ::testing::Test {
 protected:
  TableFixture() : space_(1, 4) {
    tg_ = tracker::BuildTrackerGraph();
    tracker::PaperCostParams pcp;
    pcp.scale = 0.01;
    costs_ = tracker::PaperCostModel(tg_, space_, pcp);
    auto table = ScheduleTable::Precompute(space_, tg_.graph, costs_,
                                           graph::CommModel(),
                                           graph::MachineConfig::SingleNode(4));
    SS_CHECK(table.ok());
    table_ = std::make_unique<ScheduleTable>(std::move(*table));
  }

  RegimeSpace space_;
  tracker::TrackerGraph tg_;
  graph::CostModel costs_;
  std::unique_ptr<ScheduleTable> table_;
};

TEST_F(TableFixture, OneEntryPerRegime) {
  EXPECT_EQ(table_->size(), space_.size());
  for (RegimeId r : space_.AllRegimes()) {
    const TableEntry& e = table_->Get(r);
    EXPECT_GT(e.min_latency, 0);
    EXPECT_GT(e.schedule.initiation_interval, 0);
    ASSERT_NE(e.op_graph, nullptr);
    // The stored op graph matches the schedule's entry count.
    EXPECT_EQ(e.op_graph->op_count(), e.schedule.iteration.entries().size());
  }
}

TEST_F(TableFixture, LatencyGrowsWithModels) {
  Tick prev = 0;
  for (RegimeId r : space_.AllRegimes()) {
    EXPECT_GE(table_->Get(r).min_latency, prev);
    prev = table_->Get(r).min_latency;
  }
  EXPECT_GT(table_->Get(space_.FromState(4)).min_latency,
            table_->Get(space_.FromState(1)).min_latency);
}

TEST_F(TableFixture, ManagerReplaySteadyState) {
  RegimeManager manager(space_, *table_);
  // No state changes: every frame sees the regime's optimal latency and no
  // transition overhead.
  StateTimeline still(2, {});
  RegimeRunOptions opts;
  opts.horizon = ticks::FromSeconds(60);
  auto result = manager.Replay(still, opts);
  EXPECT_TRUE(result.transitions.empty());
  EXPECT_EQ(result.transition_overhead, 0);
  const Tick expected = table_->Get(space_.FromState(2)).schedule.Latency();
  EXPECT_NEAR(result.metrics.latency_seconds.mean,
              ticks::ToSeconds(expected), 1e-9);
}

TEST_F(TableFixture, ManagerReplayCountsTransitions) {
  RegimeManager manager(space_, *table_);
  StateTimeline tl(1, {{ticks::FromSeconds(20), 3},
                       {ticks::FromSeconds(40), 2}});
  RegimeRunOptions opts;
  opts.horizon = ticks::FromSeconds(60);
  auto result = manager.Replay(tl, opts);
  EXPECT_EQ(result.transitions.size(), 2u);
  EXPECT_GT(result.transition_overhead, 0);
  EXPECT_EQ(result.transitions[0].from, space_.FromState(1));
  EXPECT_EQ(result.transitions[0].to, space_.FromState(3));
}

TEST_F(TableFixture, InfrequentChangesAmortize) {
  // The paper's amortization claim: with changes every ~30 s the switching
  // overhead is a negligible fraction of the run.
  RegimeManager manager(space_, *table_);
  Rng rng(11);
  auto tl = StateTimeline::BirthDeath(rng, ticks::FromSeconds(600),
                                      ticks::FromSeconds(30),
                                      ticks::FromSeconds(60), 1, 1, 4);
  RegimeRunOptions opts;
  opts.horizon = ticks::FromSeconds(600);
  auto result = manager.Replay(tl, opts);
  EXPECT_GT(result.transitions.size(), 0u);
  EXPECT_LT(result.overhead_fraction, 0.05);
}

TEST_F(TableFixture, FrequentChangesHurtMore) {
  RegimeManager manager(space_, *table_);
  Rng slow_rng(3), fast_rng(3);
  auto slow = StateTimeline::BirthDeath(slow_rng, ticks::FromSeconds(300),
                                        ticks::FromSeconds(60),
                                        ticks::FromSeconds(90), 1, 1, 4);
  auto fast = StateTimeline::BirthDeath(fast_rng, ticks::FromSeconds(300),
                                        ticks::FromSeconds(2),
                                        ticks::FromSeconds(3), 1, 1, 4);
  RegimeRunOptions opts;
  opts.horizon = ticks::FromSeconds(300);
  auto slow_result = manager.Replay(slow, opts);
  auto fast_result = manager.Replay(fast, opts);
  EXPECT_GT(fast_result.transitions.size(), slow_result.transitions.size());
  EXPECT_GT(fast_result.overhead_fraction, slow_result.overhead_fraction);
}

TEST_F(TableFixture, PerRegimeLatencyMatchesTableDuringRun) {
  RegimeManager manager(space_, *table_);
  StateTimeline tl(1, {{ticks::FromSeconds(30), 4}});
  RegimeRunOptions opts;
  opts.horizon = ticks::FromSeconds(60);
  auto result = manager.Replay(tl, opts);
  const Tick lat1 = table_->Get(space_.FromState(1)).schedule.Latency();
  const Tick lat4 = table_->Get(space_.FromState(4)).schedule.Latency();
  // Every frame's latency equals one of the two regimes' optima.
  for (const auto& f : result.frames) {
    const Tick lat = f.Latency();
    EXPECT_TRUE(lat == lat1 || lat == lat4) << "frame " << f.ts;
  }
}

}  // namespace
}  // namespace ss::regime
