// Integration tests of the real-threaded regime-switching runner: the full
// §3.4 mechanism — per-regime schedule table, detection at frame
// boundaries, drain + reconfigure on change — over live STM channels with
// the real tracker kernels.
#include <gtest/gtest.h>

#include <cstdio>

#include "regime/schedule_table.hpp"
#include "runtime/regime_runner.hpp"
#include "stm/channel.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::runtime {
namespace {

class RegimeRunnerFixture : public ::testing::Test {
 protected:
  RegimeRunnerFixture() {
    params_.width = 64;
    params_.height = 48;
    params_.target_size = 10;
    tg_ = tracker::BuildTrackerGraph(params_);
    space_ = std::make_unique<regime::RegimeSpace>(1, 4);
    tracker::MeasureOptions mo;
    mo.repetitions = 1;
    mo.fp_options = {1, 2};
    costs_ = tracker::MeasureCostModel(tg_, *space_, params_, mo);
    auto table = regime::ScheduleTable::Precompute(
        *space_, tg_.graph, costs_, graph::CommModel(),
        graph::MachineConfig::SingleNode(4));
    SS_CHECK(table.ok());
    table_ = std::make_unique<regime::ScheduleTable>(std::move(*table));
  }

  /// Builds the app and the reconfigure hook aligning T4's decomposition
  /// with the incoming schedule.
  std::unique_ptr<Application> MakeApp(tracker::StateFn state) {
    auto app = std::make_unique<Application>(tg_.graph);
    tracker::InstallTrackerBodies(tg_, params_, std::move(state), 4,
                                  app.get());
    SS_CHECK(app->Materialize().ok());
    return app;
  }

  RegimeSwitchingRunner::ReconfigureFn MakeReconfigure(Application* app) {
    return [this, app](RegimeId r, const regime::TableEntry& entry) {
      const auto& variant =
          costs_.Get(r, tg_.target_detection)
              .variant(entry.schedule.iteration
                           .variants()[tg_.target_detection.index()]);
      int fp = 1, mp = 1;
      auto* body = dynamic_cast<tracker::TargetDetectionBody*>(
          app->body(tg_.target_detection));
      if (std::sscanf(variant.name.c_str(), "FP=%dxMP=%d", &fp, &mp) == 2) {
        body->SetDecomposition(fp, mp);
      } else {
        body->SetDecomposition(1, 1);
      }
    };
  }

  tracker::TrackerParams params_;
  tracker::TrackerGraph tg_;
  std::unique_ptr<regime::RegimeSpace> space_;
  graph::CostModel costs_;
  std::unique_ptr<regime::ScheduleTable> table_;
};

TEST_F(RegimeRunnerFixture, SteadyStateCompletesAllFrames) {
  auto state = [](Timestamp) { return 2; };
  auto app = MakeApp(state);
  RegimeRunnerOptions opts;
  opts.frames = 10;
  RegimeSwitchingRunner runner(*app, *space_, *table_, state,
                               MakeReconfigure(app.get()), opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.frames_completed, 10u);
  EXPECT_TRUE(result->switches.empty());
}

TEST_F(RegimeRunnerFixture, SwitchesAtStateChanges) {
  // 1 person for frames 0..5, 3 people for 6..11, back to 1 for 12..17.
  auto state = [](Timestamp ts) { return ts < 6 ? 1 : (ts < 12 ? 3 : 1); };
  auto app = MakeApp(state);
  RegimeRunnerOptions opts;
  opts.frames = 18;
  RegimeSwitchingRunner runner(*app, *space_, *table_, state,
                               MakeReconfigure(app.get()), opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.frames_completed, 18u);
  ASSERT_EQ(result->switches.size(), 2u);
  EXPECT_EQ(result->switches[0].at_frame, 6);
  EXPECT_EQ(result->switches[0].from, space_->FromState(1));
  EXPECT_EQ(result->switches[0].to, space_->FromState(3));
  EXPECT_EQ(result->switches[1].at_frame, 12);
}

TEST_F(RegimeRunnerFixture, DetectionsSurviveSwitches) {
  auto state = [](Timestamp ts) { return ts < 5 ? 1 : 4; };
  auto app = MakeApp(state);
  RegimeRunnerOptions opts;
  opts.frames = 10;
  RegimeSwitchingRunner runner(*app, *space_, *table_, state,
                               MakeReconfigure(app.get()), opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every frame's detections present, with the per-frame model count.
  stm::Channel* locations = app->channel(tg_.locations_ch);
  ConnId conn = locations->Attach(stm::ConnDir::kInput);
  for (Timestamp ts = 0; ts < 10; ++ts) {
    auto item = locations->Get(conn, stm::TsQuery::Exact(ts),
                               stm::GetMode::kNonBlocking);
    ASSERT_TRUE(item.ok()) << "frame " << ts;
    auto det = item->payload.As<tracker::DetectionSet>();
    EXPECT_EQ(det->detections.size(),
              static_cast<std::size_t>(state(ts)))
        << "frame " << ts;
    for (const auto& d : det->detections) {
      tracker::TargetPose pose = tracker::PlantedPose(params_, d.model_id,
                                                      ts);
      EXPECT_NEAR(d.x, pose.x, 2 * params_.target_size) << "frame " << ts;
      EXPECT_NEAR(d.y, pose.y, 2 * params_.target_size) << "frame " << ts;
    }
  }
}

TEST_F(RegimeRunnerFixture, HistoryCrossesSegmentBoundary) {
  // Change detection needs frame ts-1; a switch between ts=4 and ts=5 must
  // not lose it (channels persist across segments).
  auto state = [](Timestamp ts) { return ts < 5 ? 2 : 3; };
  auto app = MakeApp(state);
  RegimeRunnerOptions opts;
  opts.frames = 8;
  RegimeSwitchingRunner runner(*app, *space_, *table_, state,
                               MakeReconfigure(app.get()), opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.frames_completed, 8u);
  EXPECT_EQ(result->metrics.frames_dropped, 0u);
}

TEST_F(RegimeRunnerFixture, SwitchOverheadIsSmall) {
  auto state = [](Timestamp ts) { return ts < 8 ? 1 : 3; };
  auto app = MakeApp(state);
  RegimeRunnerOptions opts;
  opts.frames = 16;
  RegimeSwitchingRunner runner(*app, *space_, *table_, state,
                               MakeReconfigure(app.get()), opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->switches.size(), 1u);
  // Reconfiguration is a table lookup plus two atomics: well under 1 ms.
  EXPECT_LT(result->switches[0].wall_overhead, ticks::FromMillis(10));
  EXPECT_GT(result->total_wall, 0);
}

}  // namespace
}  // namespace ss::runtime
