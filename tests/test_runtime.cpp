// Tests for the real threaded runtime: application materialization, the
// free-running (pthread) runner, the schedule-driven runner, and the
// splitter/worker/joiner harness.
#include <gtest/gtest.h>

#include <atomic>

#include "graph/op_graph.hpp"
#include "regime/regime.hpp"
#include "runtime/app.hpp"
#include "runtime/free_runner.hpp"
#include "runtime/scheduled_runner.hpp"
#include "runtime/splitjoin.hpp"
#include "sched/optimal.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::runtime {
namespace {

tracker::TrackerParams SmallParams() {
  tracker::TrackerParams p;
  p.width = 64;
  p.height = 48;
  p.target_size = 10;
  return p;
}

// ---- application ----------------------------------------------------------------

TEST(ApplicationTest, MaterializeCreatesChannels) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(SmallParams());
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, SmallParams(),
                                [](Timestamp) { return 1; }, 8, &app);
  ASSERT_TRUE(app.Materialize().ok());
  EXPECT_EQ(app.channels().size(), tg.graph.channel_count());
  EXPECT_NE(app.channel(tg.frame_ch), nullptr);
  // Output channel without consumers is unbounded; internal ones bounded.
  EXPECT_EQ(app.channel(tg.locations_ch)->capacity(), 0u);
  EXPECT_GT(app.channel(tg.frame_ch)->capacity(), 0u);
}

TEST(ApplicationTest, MaterializeFailsWithoutBodies) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(SmallParams());
  Application app(tg.graph);
  EXPECT_FALSE(app.Materialize().ok());
}

TEST(ApplicationTest, DoubleMaterializeFails) {
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(SmallParams());
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, SmallParams(),
                                [](Timestamp) { return 1; }, 8, &app);
  ASSERT_TRUE(app.Materialize().ok());
  EXPECT_FALSE(app.Materialize().ok());
}

// ---- free runner ------------------------------------------------------------------

TEST(FreeRunnerTest, CompletesFramesEndToEnd) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 2; }, 8,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 12;
  opts.digitizer_period = 0;  // flat out
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->timed_out);
  EXPECT_GT(result->metrics.frames_completed, 0u);
  EXPECT_EQ(result->metrics.frames_completed + result->metrics.frames_dropped,
            12u);
}

TEST(FreeRunnerTest, ResultsLandInOutputChannel) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 1; }, 8,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 6;
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  // ModelLocations holds one DetectionSet per completed frame (no consumer
  // task, so nothing is garbage collected).
  EXPECT_EQ(app.channel(tg.locations_ch)->Stats().puts,
            result->metrics.frames_completed);
}

TEST(FreeRunnerTest, SlowDigitizerNeverDrops) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 1; }, 8,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 5;
  opts.digitizer_period = ticks::FromMillis(30);
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.frames_dropped, 0u);
  EXPECT_EQ(result->metrics.frames_completed, 5u);
}

TEST(FreeRunnerTest, BoundedChannelsBoundOccupancy) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  AppOptions app_opts;
  app_opts.channel_capacity = 4;
  Application app(tg.graph, app_opts);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 2; }, 8,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  FreeRunOptions opts;
  opts.frames = 16;
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(app.channel(tg.frame_ch)->Stats().max_occupancy, 4u);
}

TEST(FreeRunnerTest, DataParallelTaskMatchesSerialResults) {
  // The same run with T4 serial vs T4 decomposed through a chunk pool must
  // produce identical detections (the Fig. 9 subgraph "exactly duplicates
  // the original task's behavior").
  tracker::TrackerParams params = SmallParams();
  const int models = 3;

  auto run_once = [&](int chunks, int fp, int mp) {
    tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
    auto app = std::make_unique<Application>(tg.graph);
    tracker::InstallTrackerBodies(tg, params,
                                  [](Timestamp) { return models; }, 8,
                                  app.get());
    SS_CHECK(app->Materialize().ok());
    if (chunks > 1) {
      auto* body = dynamic_cast<tracker::TargetDetectionBody*>(
          app->body(tg.target_detection));
      body->SetDecomposition(fp, mp);
    }
    FreeRunOptions opts;
    opts.frames = 6;
    opts.digitizer_period = ticks::FromMillis(5);
    if (chunks > 1) opts.data_parallel[tg.target_detection] = chunks;
    FreeRunner runner(*app, opts);
    auto result = runner.Run();
    SS_CHECK(result.ok());
    SS_CHECK(result->metrics.frames_completed == 6);

    // Collect detections per frame.
    stm::Channel* locations = app->channel(tg.locations_ch);
    ConnId conn = locations->Attach(stm::ConnDir::kInput);
    std::vector<std::vector<tracker::Detection>> all;
    for (Timestamp ts = 0; ts < 6; ++ts) {
      auto item = locations->Get(conn, stm::TsQuery::Exact(ts),
                                 stm::GetMode::kNonBlocking);
      SS_CHECK(item.ok());
      all.push_back(item->payload.As<tracker::DetectionSet>()->detections);
    }
    return all;
  };

  auto serial = run_once(1, 1, 1);
  auto parallel = run_once(6, 2, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t f = 0; f < serial.size(); ++f) {
    ASSERT_EQ(serial[f].size(), parallel[f].size()) << "frame " << f;
    for (std::size_t m = 0; m < serial[f].size(); ++m) {
      EXPECT_EQ(serial[f][m].x, parallel[f][m].x) << f << "/" << m;
      EXPECT_EQ(serial[f][m].y, parallel[f][m].y) << f << "/" << m;
      EXPECT_EQ(serial[f][m].model_id, parallel[f][m].model_id);
    }
  }
}

TEST(ChunkPoolTest, ErrorFromChunkPropagates) {
  class Exploding : public TaskBody {
   public:
    Status Process(const TaskInputs&, TaskOutputs*) override {
      return OkStatus();
    }
    Status ProcessChunk(const TaskInputs&, int chunk, int,
                        stm::Payload* partial) override {
      if (chunk == 2) return InternalError("chunk 2 exploded");
      *partial = stm::Payload::Make<int>(chunk);
      return OkStatus();
    }
    Status Join(const TaskInputs&, std::vector<stm::Payload>,
                TaskOutputs*) override {
      return OkStatus();
    }
  };
  Exploding body;
  ChunkPool pool(&body, 2);
  TaskInputs in;
  in.ts = 0;
  TaskOutputs out;
  Status s = pool.RunOne(in, 4, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("chunk 2 exploded"), std::string::npos);
  // The pool survives the failure and can run again.
  class Fine : public TaskBody {
   public:
    Status Process(const TaskInputs&, TaskOutputs*) override {
      return OkStatus();
    }
  };
  Fine fine;
  EXPECT_TRUE(pool.RunOne(in, 1, &out).ok());  // serial path
}

// ---- scheduled runner ---------------------------------------------------------------

TEST(ScheduledRunnerTest, ExecutesOptimalScheduleEndToEnd) {
  tracker::TrackerParams params = SmallParams();
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  const int models = 4;

  // Costs measured from the real kernels so the schedule matches reality.
  regime::RegimeSpace space(models, models);
  tracker::MeasureOptions mo;
  mo.repetitions = 1;
  mo.fp_options = {1, 2};
  graph::CostModel costs =
      tracker::MeasureCostModel(tg, space, params, mo);

  const graph::MachineConfig machine = graph::MachineConfig::SingleNode(4);
  sched::OptimalScheduler scheduler(tg.graph, costs, graph::CommModel(),
                                    machine);
  auto sched_result = scheduler.Schedule(RegimeId(0));
  ASSERT_TRUE(sched_result.ok());

  graph::OpGraph og = graph::OpGraph::Expand(
      tg.graph, costs, RegimeId(0), sched_result->best.iteration.variants());

  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params,
                                [](Timestamp) { return models; }, 8, &app);
  ASSERT_TRUE(app.Materialize().ok());

  // The scheduled runner needs the body decomposition to match the chosen
  // T4 variant.
  int t4_chunks = 1;
  for (std::size_t i = 0; i < og.op_count(); ++i) {
    const auto& op = og.op(static_cast<int>(i));
    if (op.task == tg.target_detection &&
        op.kind == graph::OpKind::kChunk) {
      t4_chunks = std::max(t4_chunks, op.chunk_index + 1);
    }
  }
  if (t4_chunks > 1) {
    auto* body = dynamic_cast<tracker::TargetDetectionBody*>(
        app.body(tg.target_detection));
    ASSERT_NE(body, nullptr);
    // The variant name records FP/MP; chunks = fp*mp with mp<=models.
    const auto& variant =
        costs.Get(RegimeId(0), tg.target_detection)
            .variant(sched_result->best.iteration
                         .variants()[tg.target_detection.index()]);
    int fp = 1, mp = 1;
    if (sscanf(variant.name.c_str(), "FP=%dxMP=%d", &fp, &mp) == 2) {
      body->SetDecomposition(fp, mp);
    } else {
      body->SetDecomposition(t4_chunks, 1);
    }
  }

  ScheduledRunOptions opts;
  opts.frames = 8;
  ScheduledRunner runner(app, og, sched_result->best, opts);
  auto run = runner.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->metrics.frames_completed, 8u);
  EXPECT_EQ(run->metrics.frames_dropped, 0u);
  // Detections land for every frame.
  EXPECT_EQ(app.channel(tg.locations_ch)->Stats().puts, 8u);
}

// ---- split/join harness ----------------------------------------------------------------

class SplitJoinFixture : public ::testing::Test {
 protected:
  SplitJoinFixture()
      : params_(SmallParams()),
        enrolled_(std::make_shared<const tracker::ModelSet>(
            tracker::MakeModelSet(params_, 8))),
        body_(params_, enrolled_) {}

  TaskInputs MakeInputs(Timestamp ts, int models) {
    tracker::Frame f = tracker::SynthesizeFrame(params_, ts, models);
    f.num_targets = models;
    tracker::FrameHistogram fh = tracker::ComputeHistogram(f);
    tracker::MotionMask mask = tracker::ChangeDetect(f, nullptr);
    TaskInputs in;
    in.ts = ts;
    in.items = {
        stm::Item{ts, stm::Payload::Make<tracker::Frame>(std::move(f))},
        stm::Item{ts, stm::Payload::Make<tracker::FrameHistogram>(
                          std::move(fh))},
        stm::Item{ts,
                  stm::Payload::Make<tracker::MotionMask>(std::move(mask))},
    };
    return in;
  }

  tracker::TrackerParams params_;
  std::shared_ptr<const tracker::ModelSet> enrolled_;
  tracker::TargetDetectionBody body_;
};

TEST_F(SplitJoinFixture, ProcessesAllFramesInOrderedOutput) {
  const int models = 4;
  body_.SetDecomposition(2, 2);
  DecompositionTable table;
  table.Set(RegimeId(0), Decomposition{4, 0});

  std::mutex mu;
  std::map<Timestamp, std::size_t> outputs;
  SplitJoinHarness harness(&body_, table, SplitJoinOptions{4, 16});
  Status s = harness.Run(
      6,
      [&](Timestamp ts) -> Expected<TaskInputs> {
        return MakeInputs(ts, models);
      },
      [&](Timestamp ts, TaskOutputs out) {
        auto bp = out.items.at(0).As<tracker::BackProjectionSet>();
        std::lock_guard lock(mu);
        outputs[ts] = bp->maps.size();
      },
      [](Timestamp) { return RegimeId(0); });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(outputs.size(), 6u);
  for (const auto& [ts, maps] : outputs) {
    EXPECT_EQ(maps, static_cast<std::size_t>(models)) << "ts " << ts;
  }
  EXPECT_EQ(harness.stats().items_processed, 6u);
  EXPECT_EQ(harness.stats().chunks_processed, 6u * 4u);
}

TEST_F(SplitJoinFixture, SerialDecompositionUsesProcessPath) {
  DecompositionTable table;
  table.Set(RegimeId(0), Decomposition{1, 0});
  std::atomic<int> outputs{0};
  SplitJoinHarness harness(&body_, table, SplitJoinOptions{2, 8});
  Status s = harness.Run(
      3,
      [&](Timestamp ts) -> Expected<TaskInputs> { return MakeInputs(ts, 2); },
      [&](Timestamp, TaskOutputs) { outputs.fetch_add(1); },
      [](Timestamp) { return RegimeId(0); });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(outputs.load(), 3);
}

TEST_F(SplitJoinFixture, StateChangeSwitchesDecomposition) {
  // Constrained dynamism through the table: state 0 -> serial, state 1 ->
  // 4 chunks; the harness switches per frame.
  body_.SetDecomposition(2, 2);
  DecompositionTable table;
  table.Set(RegimeId(0), Decomposition{1, 0});
  table.Set(RegimeId(1), Decomposition{4, 0});
  SplitJoinHarness harness(&body_, table, SplitJoinOptions{4, 16});
  std::atomic<int> outputs{0};
  Status s = harness.Run(
      8,
      [&](Timestamp ts) -> Expected<TaskInputs> { return MakeInputs(ts, 4); },
      [&](Timestamp, TaskOutputs) { outputs.fetch_add(1); },
      [](Timestamp ts) { return RegimeId(ts < 4 ? 0 : 1); });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(outputs.load(), 8);
  // 4 serial frames (1 chunk each) + 4 decomposed frames (4 chunks each).
  EXPECT_EQ(harness.stats().chunks_processed, 4u * 1 + 4u * 4);
}

TEST_F(SplitJoinFixture, InputFailurePropagates) {
  DecompositionTable table;
  table.Set(RegimeId(0), Decomposition{2, 0});
  body_.SetDecomposition(2, 1);
  SplitJoinHarness harness(&body_, table, SplitJoinOptions{2, 8});
  Status s = harness.Run(
      4,
      [&](Timestamp ts) -> Expected<TaskInputs> {
        if (ts == 2) return Status(InternalError("camera unplugged"));
        return MakeInputs(ts, 2);
      },
      [](Timestamp, TaskOutputs) {}, [](Timestamp) { return RegimeId(0); });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("camera unplugged"), std::string::npos);
}

TEST(DecompositionTableTest, SetAndGet) {
  DecompositionTable table;
  table.Set(RegimeId(0), Decomposition{1, 10});
  table.Set(RegimeId(3), Decomposition{8, 30});
  EXPECT_EQ(table.Get(RegimeId(0)).chunks, 1);
  EXPECT_EQ(table.Get(RegimeId(3)).chunks, 8);
  EXPECT_EQ(table.Get(RegimeId(3)).tag, 30);
  EXPECT_EQ(table.size(), 4u);
}

}  // namespace
}  // namespace ss::runtime
