// Scaling properties of the optimal scheduler across machine shapes, and
// conservation invariants of the online simulator across its parameter
// grid.
#include <gtest/gtest.h>

#include "graph/op_graph.hpp"
#include "regime/regime.hpp"
#include "sched/optimal.hpp"
#include "sim/online_sim.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::MachineConfig;
using graph::OpGraph;

struct Fixture {
  tracker::TrackerGraph tg;
  regime::RegimeSpace space{8, 8};
  graph::CostModel costs;

  Fixture() : tg(tracker::BuildTrackerGraph()) {
    tracker::PaperCostParams pcp;
    pcp.scale = 0.001;
    costs = tracker::PaperCostModel(tg, space, pcp);
  }
};

Fixture& GetSetup() {
  static Fixture s;
  return s;
}

constexpr RegimeId kR0 = RegimeId(0);

// ---- machine-shape monotonicity ------------------------------------------------

TEST(ScalingTest, MoreProcessorsNeverIncreaseLatency) {
  Fixture& s = GetSetup();
  Tick prev = kTickInfinity;
  for (int procs : {1, 2, 4, 8}) {
    sched::OptimalScheduler scheduler(s.tg.graph, s.costs, CommModel(),
                                      MachineConfig::SingleNode(procs));
    auto result = scheduler.Schedule(kR0);
    ASSERT_TRUE(result.ok()) << procs;
    EXPECT_LE(result->min_latency, prev) << procs << " procs";
    prev = result->min_latency;
  }
}

TEST(ScalingTest, MoreProcessorsNeverReduceThroughput) {
  Fixture& s = GetSetup();
  double prev = 0;
  for (int procs : {1, 2, 4, 8}) {
    sched::OptimalScheduler scheduler(s.tg.graph, s.costs, CommModel(),
                                      MachineConfig::SingleNode(procs));
    auto result = scheduler.Schedule(kR0);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->best.ThroughputPerSec(), prev - 1e-9)
        << procs << " procs";
    prev = result->best.ThroughputPerSec();
  }
}

TEST(ScalingTest, FreeCommSecondNodeMatchesDoubleProcessors) {
  // With free communication, 2 nodes x 2 procs equals 1 node x 4 procs.
  Fixture& s = GetSetup();
  sched::OptimalScheduler flat(s.tg.graph, s.costs, CommModel::Free(),
                               MachineConfig::SingleNode(4));
  sched::OptimalScheduler split(s.tg.graph, s.costs, CommModel::Free(),
                                MachineConfig::Cluster(2, 2));
  auto a = flat.Schedule(kR0);
  auto b = split.Schedule(kR0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->min_latency, b->min_latency);
}

TEST(ScalingTest, ExpensiveInterNodeNeverBeatsSingleNode) {
  // Adding a second node behind an expensive link cannot reduce the
  // minimal latency below the single-node optimum with the same per-node
  // processors (it can only match it by ignoring the second node).
  Fixture& s = GetSetup();
  CommModel comm;
  comm.inter_latency = ticks::FromSeconds(10);
  comm.inter_bytes_per_us = 1;
  sched::OptimalScheduler single(s.tg.graph, s.costs, comm,
                                 MachineConfig::SingleNode(4));
  sched::OptimalScheduler cluster(s.tg.graph, s.costs, comm,
                                  MachineConfig::Cluster(2, 4));
  auto a = single.Schedule(kR0);
  auto b = cluster.Schedule(kR0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->min_latency, b->min_latency);
  // But the cluster pipelines across nodes: throughput at least as good.
  EXPECT_GE(b->best.ThroughputPerSec(),
            a->best.ThroughputPerSec() - 1e-9);
}

TEST(ScalingTest, SingleProcessorLatencyIsTotalWork) {
  Fixture& s = GetSetup();
  sched::OptimalScheduler scheduler(s.tg.graph, s.costs, CommModel::Free(),
                                    MachineConfig::SingleNode(1));
  auto result = scheduler.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  // On one processor the best choice is the serial variant everywhere and
  // latency equals total serialized work.
  OpGraph og = OpGraph::Expand(s.tg.graph, s.costs, kR0,
                               result->best.iteration.variants());
  EXPECT_EQ(result->min_latency, og.TotalWork());
}

// ---- online simulator invariants ------------------------------------------------

struct OnlineCase {
  int quantum_ms;
  int capacity;
  int period_ms;
};

class OnlineInvariants : public ::testing::TestWithParam<OnlineCase> {};

TEST_P(OnlineInvariants, ConservationAndBounds) {
  Fixture& s = GetSetup();
  const OnlineCase c = GetParam();
  std::vector<VariantId> serial(s.tg.graph.task_count(), VariantId(0));
  OpGraph og = OpGraph::Expand(s.tg.graph, s.costs, kR0, serial);

  sim::OnlineSimOptions opts;
  opts.quantum = ticks::FromMillis(c.quantum_ms);
  opts.queue_capacity = static_cast<std::size_t>(c.capacity);
  opts.digitizer_period = ticks::FromMillis(c.period_ms);
  opts.frames = 50;
  opts.record_trace = true;
  sim::OnlineSimulator sim(og, MachineConfig::SingleNode(4), opts);
  auto result = sim.Run();

  // Conservation: every frame is either completed, dropped, or in flight.
  EXPECT_LE(result.metrics.frames_completed + result.metrics.frames_dropped,
            opts.frames);
  EXPECT_GT(result.metrics.frames_completed, 0u);

  // Latency lower bound.
  if (result.metrics.frames_completed > 0) {
    EXPECT_GE(result.metrics.latency_seconds.min,
              ticks::ToSeconds(og.CriticalPath()) - 1e-9);
  }

  // Work conservation: busy time never exceeds procs x elapsed, and the
  // completed frames' work is fully accounted.
  Tick busy = 0;
  for (int p = 0; p < 4; ++p) busy += result.trace.BusyTime(ProcId(p));
  EXPECT_LE(busy, 4 * result.end_time);
  EXPECT_GE(busy, static_cast<Tick>(result.metrics.frames_completed) *
                      og.TotalWork());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OnlineInvariants,
    ::testing::Values(OnlineCase{1, 1, 50}, OnlineCase{1, 8, 50},
                      OnlineCase{10, 2, 200}, OnlineCase{10, 8, 2000},
                      OnlineCase{100, 2, 50}, OnlineCase{100, 8, 500},
                      OnlineCase{250, 4, 33}, OnlineCase{50, 1, 5000}),
    [](const auto& info) {
      return "q" + std::to_string(info.param.quantum_ms) + "c" +
             std::to_string(info.param.capacity) + "p" +
             std::to_string(info.param.period_ms);
    });

}  // namespace
}  // namespace ss
