// Tests for the schedule IR, the pipeline composer, and the naive schedule
// builders (paper Fig. 4 comparison points).
#include <gtest/gtest.h>

#include "graph/cost_model.hpp"
#include "graph/machine.hpp"
#include "graph/op_graph.hpp"
#include "graph/task_graph.hpp"
#include "sched/naive.hpp"
#include "sched/pipeline.hpp"
#include "sched/schedule.hpp"

namespace ss::sched {
namespace {

using graph::CommModel;
using graph::CostModel;
using graph::MachineConfig;
using graph::OpGraph;
using graph::TaskCost;
using graph::TaskGraph;

constexpr RegimeId kR0 = RegimeId(0);

/// src(10) -> work(100) chain for two tasks, expanded serially.
struct Chain {
  TaskGraph g;
  CostModel cm;
  OpGraph og;

  Chain() : og(Build()) {}

  OpGraph Build() {
    TaskId a = g.AddTask("a", true);
    TaskId b = g.AddTask("b");
    ChannelId c = g.AddChannel("c", 0);
    g.SetProducer(a, c);
    g.AddConsumer(b, c);
    cm.Set(kR0, a, TaskCost::Serial(10));
    cm.Set(kR0, b, TaskCost::Serial(100));
    return OpGraph::Expand(g, cm, kR0, {VariantId(0), VariantId(0)});
  }
};

TEST(IterationScheduleTest, LatencyAndBusy) {
  Chain fx;
  IterationSchedule s({VariantId(0), VariantId(0)},
                      {{0, ProcId(0), 0, 10}, {1, ProcId(1), 10, 100}});
  EXPECT_EQ(s.Latency(), 110);
  EXPECT_EQ(s.ProcBusy(ProcId(0)), 10);
  EXPECT_EQ(s.ProcBusy(ProcId(1)), 100);
  EXPECT_EQ(s.ProcsUsed(), 2);
  EXPECT_EQ(s.IdleTime(2), 110 * 2 - 110);
  EXPECT_TRUE(s.Validate(fx.og, MachineConfig::SingleNode(2), CommModel())
                  .ok());
  EXPECT_FALSE(s.ToString(fx.og).empty());
}

TEST(IterationScheduleTest, ValidateCatchesOverlap) {
  Chain fx;
  // Both ops on the same processor at overlapping times.
  IterationSchedule s({VariantId(0), VariantId(0)},
                      {{0, ProcId(0), 0, 10}, {1, ProcId(0), 5, 100}});
  EXPECT_FALSE(s.Validate(fx.og, MachineConfig::SingleNode(2), CommModel())
                   .ok());
}

TEST(IterationScheduleTest, ValidateCatchesDependenceViolation) {
  Chain fx;
  IterationSchedule s({VariantId(0), VariantId(0)},
                      {{0, ProcId(0), 50, 10}, {1, ProcId(1), 0, 100}});
  EXPECT_FALSE(s.Validate(fx.og, MachineConfig::SingleNode(2), CommModel())
                   .ok());
}

TEST(IterationScheduleTest, ValidateChargesCommunication) {
  Chain fx;
  CommModel comm;
  comm.intra_latency = 25;
  comm.intra_bytes_per_us = 0;
  // b starts exactly at a's finish on another proc: violates comm delay.
  IterationSchedule tight({VariantId(0), VariantId(0)},
                          {{0, ProcId(0), 0, 10}, {1, ProcId(1), 10, 100}});
  EXPECT_FALSE(
      tight.Validate(fx.og, MachineConfig::SingleNode(2), comm).ok());
  // With the delay honoured it passes.
  IterationSchedule ok({VariantId(0), VariantId(0)},
                       {{0, ProcId(0), 0, 10}, {1, ProcId(1), 35, 100}});
  EXPECT_TRUE(ok.Validate(fx.og, MachineConfig::SingleNode(2), comm).ok());
  // Same processor needs no communication.
  IterationSchedule same({VariantId(0), VariantId(0)},
                         {{0, ProcId(0), 0, 10}, {1, ProcId(0), 10, 100}});
  EXPECT_TRUE(same.Validate(fx.og, MachineConfig::SingleNode(2), comm).ok());
}

TEST(IterationScheduleTest, ValidateCatchesMissingOrDuplicateOps) {
  Chain fx;
  IterationSchedule missing({VariantId(0), VariantId(0)},
                            {{0, ProcId(0), 0, 10}});
  EXPECT_FALSE(
      missing.Validate(fx.og, MachineConfig::SingleNode(2), CommModel())
          .ok());
  IterationSchedule dup({VariantId(0), VariantId(0)},
                        {{0, ProcId(0), 0, 10}, {0, ProcId(1), 0, 10}});
  EXPECT_FALSE(
      dup.Validate(fx.og, MachineConfig::SingleNode(2), CommModel()).ok());
}

TEST(IterationScheduleTest, CanonicalKeyDistinguishesPlacement) {
  IterationSchedule a({VariantId(0)}, {{0, ProcId(0), 0, 10}});
  IterationSchedule b({VariantId(0)}, {{0, ProcId(1), 0, 10}});
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
  IterationSchedule a2({VariantId(0)}, {{0, ProcId(0), 0, 10}});
  EXPECT_EQ(a.CanonicalKey(), a2.CanonicalKey());
}

// ---- pipeline composer -----------------------------------------------------------

TEST(PipelineTest, NoRotationGivesProcSpanInterval) {
  // One op occupying [0, 100) on proc 0: II must be 100 without rotation.
  IterationSchedule iter({VariantId(0)}, {{0, ProcId(0), 0, 100}});
  EXPECT_EQ(PipelineComposer::MinInitiationInterval(iter, 4, 0), 100);
}

TEST(PipelineTest, RotationDividesInterval) {
  // With rotation 1 over 4 procs, four iterations overlap: II = 25 keeps
  // every processor exclusively owned... actually II can drop to the point
  // where the 4-apart iteration returns to the same processor: 4*II >= 100.
  IterationSchedule iter({VariantId(0)}, {{0, ProcId(0), 0, 100}});
  EXPECT_EQ(PipelineComposer::MinInitiationInterval(iter, 4, 1), 25);
}

TEST(PipelineTest, ComposePicksBestRotation) {
  IterationSchedule iter({VariantId(0)}, {{0, ProcId(0), 0, 100}});
  PipelinedSchedule s = PipelineComposer::Compose(iter, 4);
  EXPECT_EQ(s.initiation_interval, 25);
  EXPECT_NE(s.rotation, 0);
  EXPECT_NEAR(s.ThroughputPerSec(), 1e6 / 25.0, 1e-9);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(PipelineTest, RotationDisallowedFallsBack) {
  IterationSchedule iter({VariantId(0)}, {{0, ProcId(0), 0, 100}});
  PipelineOptions opts;
  opts.allow_rotation = false;
  PipelinedSchedule s = PipelineComposer::Compose(iter, 4, opts);
  EXPECT_EQ(s.rotation, 0);
  EXPECT_EQ(s.initiation_interval, 100);
}

TEST(PipelineTest, MultiProcIterationRotation) {
  // Two ops in parallel on procs 0 and 1, each 50 long. Rotation 2 on a
  // 4-proc machine alternates pairs: II = 25 (4 procs / 2-proc iteration).
  IterationSchedule iter(
      {VariantId(0), VariantId(0)},
      {{0, ProcId(0), 0, 50}, {1, ProcId(1), 0, 50}});
  const Tick ii2 = PipelineComposer::MinInitiationInterval(iter, 4, 2);
  EXPECT_EQ(ii2, 25);
  const Tick ii0 = PipelineComposer::MinInitiationInterval(iter, 4, 0);
  EXPECT_EQ(ii0, 50);
}

TEST(PipelineTest, PipelinedProcForRotates) {
  IterationSchedule iter({VariantId(0)}, {{0, ProcId(1), 0, 10}});
  PipelinedSchedule s;
  s.iteration = iter;
  s.procs = 4;
  s.rotation = 1;
  s.initiation_interval = 10;
  const auto& e = s.iteration.entries()[0];
  EXPECT_EQ(s.ProcFor(e, 0), ProcId(1));
  EXPECT_EQ(s.ProcFor(e, 1), ProcId(2));
  EXPECT_EQ(s.ProcFor(e, 3), ProcId(0));  // wraps around
  EXPECT_EQ(s.ProcFor(e, 7), ProcId(0));
}

TEST(PipelineTest, IntervalNeverExceedsLatency) {
  // Property: a full iteration always fits behind the previous one, so the
  // minimal II is at most the latency for rotation 0 and any rotation.
  IterationSchedule iter(
      {VariantId(0), VariantId(0), VariantId(0)},
      {{0, ProcId(0), 0, 30}, {1, ProcId(1), 30, 50}, {2, ProcId(0), 80, 20}});
  for (int r = 0; r < 4; ++r) {
    EXPECT_LE(PipelineComposer::MinInitiationInterval(iter, 4, r),
              iter.Latency())
        << "rotation " << r;
  }
}

// ---- naive schedules ----------------------------------------------------------------

TEST(NaiveTest, SerialIterationOnOneProc) {
  Chain fx;
  PipelinedSchedule s =
      SingleProcessorSchedule(fx.og, MachineConfig::SingleNode(4));
  EXPECT_EQ(s.iteration.Latency(), 110);
  EXPECT_EQ(s.iteration.ProcsUsed(), 1);
  EXPECT_EQ(s.rotation, 0);
  EXPECT_EQ(s.initiation_interval, 110);
}

TEST(NaiveTest, NaivePipelineRotatesForThroughput) {
  Chain fx;
  PipelinedSchedule s =
      NaivePipelineSchedule(fx.og, MachineConfig::SingleNode(4));
  EXPECT_EQ(s.iteration.Latency(), 110);  // latency unchanged (Fig. 4b)
  EXPECT_EQ(s.rotation, 1);
  // Four processors can interleave: II = ceil(110/4) = 28.
  EXPECT_EQ(s.initiation_interval, 28);
}

TEST(NaiveTest, NaivePipelineRespectsDependences) {
  Chain fx;
  PipelinedSchedule s =
      NaivePipelineSchedule(fx.og, MachineConfig::SingleNode(4));
  EXPECT_TRUE(s.iteration
                  .Validate(fx.og, MachineConfig::SingleNode(4), CommModel())
                  .ok());
}

}  // namespace
}  // namespace ss::sched
