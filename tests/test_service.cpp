// Tests for the scheduler-as-a-service subsystem: canonical fingerprinting,
// the sharded schedule cache, single-flight request coalescing, typed
// backpressure (queue-full, deadline-exceeded, shutdown), snapshot
// persistence, and service-backed parallel regime-table construction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/crc32.hpp"
#include "graph/fingerprint.hpp"
#include "graph/graph_io.hpp"
#include "regime/regime.hpp"
#include "regime/schedule_table.hpp"
#include "sched/optimal.hpp"
#include "service/schedule_cache.hpp"
#include "service/schedule_service.hpp"
#include "service/table_builder.hpp"

namespace ss::service {
namespace {

ServiceOptions Opts(int workers, std::size_t queue_capacity = 64,
                    std::string snapshot_path = {}) {
  ServiceOptions options;
  options.workers = workers;
  options.queue_capacity = queue_capacity;
  options.snapshot_path = std::move(snapshot_path);
  return options;
}

/// A small three-task pipeline; `salt` perturbs the costs so distinct salts
/// give distinct problems (and fingerprints).
std::shared_ptr<graph::ProblemSpec> MakeProblem(int salt,
                                                std::size_t regimes = 1) {
  auto spec = std::make_shared<graph::ProblemSpec>();
  const TaskId src = spec->graph.AddTask("src", /*is_source=*/true);
  const TaskId mid = spec->graph.AddTask("mid");
  const TaskId sink = spec->graph.AddTask("sink");
  const ChannelId a = spec->graph.AddChannel("a", 100);
  spec->graph.SetProducer(src, a);
  spec->graph.AddConsumer(mid, a);
  const ChannelId b = spec->graph.AddChannel("b", 100);
  spec->graph.SetProducer(mid, b);
  spec->graph.AddConsumer(sink, b);
  for (std::size_t r = 0; r < regimes; ++r) {
    const RegimeId rid(static_cast<RegimeId::underlying_type>(r));
    const Tick scale = static_cast<Tick>(r + 1);
    spec->costs.Set(rid, src, graph::TaskCost::Serial(100 + salt));
    graph::TaskCost mid_cost = graph::TaskCost::Serial(400 * scale);
    mid_cost.AddVariant(graph::DpVariant{"x2", 2, 180 * scale, 20, 20});
    spec->costs.Set(rid, mid, mid_cost);
    spec->costs.Set(rid, sink, graph::TaskCost::Serial(50));
  }
  spec->machine = graph::MachineConfig::SingleNode(2);
  spec->comm = graph::CommModel::Free();
  spec->regime_count = regimes;
  return spec;
}

/// The same problem as MakeProblem, declared in a different order (tasks,
/// channels, and data-parallel variants permuted).
std::shared_ptr<graph::ProblemSpec> MakeProblemReordered(int salt) {
  auto spec = std::make_shared<graph::ProblemSpec>();
  const TaskId sink = spec->graph.AddTask("sink");
  const TaskId src = spec->graph.AddTask("src", /*is_source=*/true);
  const TaskId mid = spec->graph.AddTask("mid");
  const ChannelId b = spec->graph.AddChannel("b", 100);
  spec->graph.SetProducer(mid, b);
  spec->graph.AddConsumer(sink, b);
  const ChannelId a = spec->graph.AddChannel("a", 100);
  spec->graph.SetProducer(src, a);
  spec->graph.AddConsumer(mid, a);
  spec->costs.Set(RegimeId(0), sink, graph::TaskCost::Serial(50));
  graph::TaskCost mid_cost = graph::TaskCost::Serial(400);
  mid_cost.AddVariant(graph::DpVariant{"two-way", 2, 180, 20, 20});
  spec->costs.Set(RegimeId(0), mid, mid_cost);
  spec->costs.Set(RegimeId(0), src, graph::TaskCost::Serial(100 + salt));
  spec->machine = graph::MachineConfig::SingleNode(2);
  spec->comm = graph::CommModel::Free();
  spec->regime_count = 1;
  return spec;
}

TEST(FingerprintTest, InvariantUnderDeclarationReordering) {
  const graph::Fingerprint fp_a(*MakeProblem(7));
  const graph::Fingerprint fp_b(*MakeProblemReordered(7));
  EXPECT_EQ(fp_a, fp_b) << fp_a.ToHex() << " vs " << fp_b.ToHex();
}

TEST(FingerprintTest, SensitiveToEveryInput) {
  const graph::Fingerprint base(*MakeProblem(7));
  EXPECT_NE(base, graph::Fingerprint(*MakeProblem(8)));

  auto machine = MakeProblem(7);
  machine->machine.procs_per_node = 4;
  EXPECT_NE(base, graph::Fingerprint(*machine));

  auto comm = MakeProblem(7);
  comm->comm.inter_latency = 99;
  EXPECT_NE(base, graph::Fingerprint(*comm));

  auto renamed = MakeProblem(7);
  renamed->graph.AddTask("extra", true);
  renamed->costs.Set(RegimeId(0), renamed->graph.FindTask("extra"),
                     graph::TaskCost::Serial(1));
  EXPECT_NE(base, graph::Fingerprint(*renamed));
}

TEST(FingerprintTest, HexRoundTripAndExtension) {
  const graph::Fingerprint fp(*MakeProblem(3));
  auto parsed = graph::Fingerprint::FromHex(fp.ToHex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(fp, *parsed);
  EXPECT_FALSE(graph::Fingerprint::FromHex("short").ok());
  EXPECT_NE(fp, fp.Extended({1}));
  EXPECT_EQ(fp.Extended({1, 2}), fp.Extended({1, 2}));
  EXPECT_NE(fp.Extended({1, 2}), fp.Extended({2, 1}));
}

TEST(FingerprintTest, StableAcrossProcessRuns) {
  // Golden value: pins the canonical hash so an accidental algorithm change
  // (or platform dependence) fails loudly. Recompute deliberately if the
  // fingerprint definition changes, and note it in docs/service.md.
  const graph::Fingerprint fp(*MakeProblem(7));
  EXPECT_EQ(fp.ToHex(), "3ba9540622e6f9d6945d8d0a7a320670");
}

TEST(RequestKeyTest, DistinguishesRegimeAndOptions) {
  auto problem = MakeProblem(1, /*regimes=*/2);
  SolveRequest base;
  base.problem = problem;

  SolveRequest other_regime = base;
  other_regime.regime = RegimeId(1);
  EXPECT_NE(ScheduleService::RequestKey(base),
            ScheduleService::RequestKey(other_regime));

  SolveRequest no_rotation = base;
  no_rotation.options.pipeline.allow_rotation = false;
  EXPECT_NE(ScheduleService::RequestKey(base),
            ScheduleService::RequestKey(no_rotation));
}

TEST(ScheduleCacheTest, LruEvictionAndCounters) {
  ScheduleCache cache(/*capacity=*/2, /*shards=*/1);
  auto entry = [](std::uint64_t n) {
    auto e = std::make_shared<CachedSolve>();
    e->key = graph::Fingerprint(n, n);
    e->min_latency = static_cast<Tick>(n);
    return e;
  };
  cache.Insert(entry(1));
  cache.Insert(entry(2));
  ASSERT_NE(cache.Lookup(graph::Fingerprint(1, 1)), nullptr);  // 1 is MRU
  cache.Insert(entry(3));                                      // evicts 2
  EXPECT_EQ(cache.Lookup(graph::Fingerprint(2, 2)), nullptr);
  EXPECT_NE(cache.Lookup(graph::Fingerprint(1, 1)), nullptr);
  EXPECT_NE(cache.Lookup(graph::Fingerprint(3, 3)), nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ScheduleServiceTest, CacheHitReturnsScheduleIdenticalToFreshSolve) {
  auto problem = MakeProblem(0);
  ScheduleService service(Opts(2));

  SolveRequest request;
  request.problem = problem;
  auto first = service.Solve(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = service.Solve(request);
  ASSERT_TRUE(second.ok());
  // The hit hands back the very same published entry.
  EXPECT_EQ(first->get(), second->get());

  sched::OptimalScheduler fresh(problem->graph, problem->costs,
                                problem->comm, problem->machine);
  auto direct = fresh.Schedule(RegimeId(0));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*first)->min_latency, direct->min_latency);
  EXPECT_EQ((*first)->schedule.initiation_interval,
            direct->best.initiation_interval);
  EXPECT_EQ((*first)->schedule.iteration.CanonicalKey(),
            direct->best.iteration.CanonicalKey());
  EXPECT_GT((*first)->stats.nodes_explored, 0u);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ScheduleServiceTest, SingleFlightUnderConcurrentMixedLoad) {
  // 8 threads x 100 mixed requests over 5 distinct problems must cost
  // exactly 5 solver invocations: every other request is a cache hit or
  // coalesces onto an in-flight solve.
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 100;
  constexpr int kProblems = 5;

  std::vector<std::shared_ptr<const graph::ProblemSpec>> problems;
  for (int p = 0; p < kProblems; ++p) problems.push_back(MakeProblem(p));

  ScheduleService service(
      Opts(4, 32));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        SolveRequest request;
        request.problem =
            problems[static_cast<std::size_t>((t + i) % kProblems)];
        auto result = service.Solve(request);
        if (!result.ok() ||
            (*result)->schedule.initiation_interval <= 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  EXPECT_EQ(stats.solves, static_cast<std::uint64_t>(kProblems));
  EXPECT_EQ(stats.cache_hits + stats.coalesced,
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread -
                                       kProblems));
  EXPECT_EQ(stats.solve_failures, 0u);
  EXPECT_EQ(stats.cache.entries, static_cast<std::size_t>(kProblems));
}

TEST(ScheduleServiceTest, ExpiredDeadlineIsATypedError) {
  ScheduleService service(Opts(1));
  SolveRequest request;
  request.problem = MakeProblem(0);
  request.deadline = WallNow() - 1000;  // already expired when queued
  auto submitted = service.SubmitAsync(request);
  ASSERT_TRUE(submitted.ok());
  auto result = submitted->get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Stats().deadline_exceeded, 1u);
  EXPECT_EQ(service.Stats().solves, 0u);
}

TEST(ScheduleServiceTest, SyncSolveHonorsDeadlineWhilePaused) {
  // workers = 0: a valid paused service — nothing dequeues, so a sync Solve
  // with a finite deadline must come back as kDeadlineExceeded instead of
  // hanging.
  ScheduleService service(Opts(0));
  SolveRequest request;
  request.problem = MakeProblem(0);
  request.deadline = WallNow() + 20'000;  // 20ms
  auto result = service.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ScheduleServiceTest, QueueFullIsATypedErrorAndShutdownCancels) {
  ScheduleService service(
      Opts(0, 2));
  SolveRequest r0, r1, r2;
  r0.problem = MakeProblem(0);
  r1.problem = MakeProblem(1);
  r2.problem = MakeProblem(2);
  auto f0 = service.SubmitAsync(r0);
  auto f1 = service.SubmitAsync(r1);
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f1.ok());
  auto rejected = service.SubmitAsync(r2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kWouldBlock);

  // Duplicate of a queued request coalesces instead of consuming the queue.
  auto dup = service.SubmitAsync(r0);
  ASSERT_TRUE(dup.ok());

  service.Shutdown();
  EXPECT_EQ(f0->get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(f1->get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(dup->get().status().code(), StatusCode::kCancelled);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queue_rejected, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.cancelled, 2u);

  auto after = service.SubmitAsync(r0);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
}

TEST(ScheduleServiceTest, InvalidRegimeFailsTyped) {
  ScheduleService service(Opts(1));
  SolveRequest request;
  request.problem = MakeProblem(0);
  request.regime = RegimeId(5);
  auto result = service.Solve(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Stats().solve_failures, 1u);
}

TEST(ScheduleServiceTest, SnapshotPersistenceWarmsARestart) {
  const std::string path = "test_service_snapshot.sscache";
  std::remove(path.c_str());
  auto problem = MakeProblem(4);
  std::string canonical_key;
  {
    ScheduleService service(
        Opts(2, 64, path));
    SolveRequest request;
    request.problem = problem;
    auto result = service.Solve(request);
    ASSERT_TRUE(result.ok());
    canonical_key = (*result)->schedule.iteration.CanonicalKey();
    service.Shutdown();  // saves the snapshot
  }
  {
    ScheduleService service(
        Opts(2, 64, path));
    EXPECT_EQ(service.cache().size(), 1u);
    SolveRequest request;
    request.problem = problem;
    auto result = service.Solve(request);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)->schedule.iteration.CanonicalKey(), canonical_key);
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.solves, 0u) << "warm restart must not re-solve";
    EXPECT_EQ(stats.cache_hits, 1u);
  }
  std::remove(path.c_str());
}

TEST(ScheduleCacheTest, SnapshotRoundTripPreservesEntries) {
  const std::string path = "test_cache_snapshot.sscache";
  std::remove(path.c_str());
  ScheduleCache cache(8, 2);
  {
    ScheduleService service(Opts(1));
    SolveRequest request;
    request.problem = MakeProblem(1);
    auto result = service.Solve(request);
    ASSERT_TRUE(result.ok());
    cache.Insert(*result);
  }
  ASSERT_TRUE(cache.Save(path).ok());

  ScheduleCache reloaded(8, 2);
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), cache.size());
  ScheduleCache bad(8, 2);
  EXPECT_EQ(bad.Load("/nonexistent/snapshot").code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

/// Rewrites every snapshot line through `edit`; lines `edit` leaves alone
/// pass through untouched. Re-seals the CRC footer afterwards so the
/// tampering survives the load-time checksum — these tests target the
/// *parsing* and *verification* layers behind it (the checksum itself is
/// covered by SnapshotCrashSafetyTest in test_fault).
template <typename Edit>
void TamperSnapshot(const std::string& path, Edit edit) {
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("crc ", 0) == 0) continue;  // re-sealed below
    edit(&line);
    out << line << "\n";
  }
  in.close();
  std::string body = out.str();
  char footer[24];
  std::snprintf(footer, sizeof(footer), "crc %08x\n", Crc32(body));
  body += footer;
  std::ofstream rewrite(path, std::ios::trunc);
  rewrite << body;
}

TEST(ScheduleCacheTest, LoadRejectsStructurallyCorruptSnapshot) {
  const std::string path = "test_cache_corrupt.sscache";
  std::remove(path.c_str());
  {
    ScheduleService service(Opts(1, 64, path));
    SolveRequest request;
    request.problem = MakeProblem(3);
    ASSERT_TRUE(service.Solve(request).ok());
    service.Shutdown();
  }
  // Pile every op onto processor 0 at t=0: an unmistakable overlap that the
  // spec-free structural pass must catch at load time.
  TamperSnapshot(path, [](std::string* line) {
    if (line->rfind("op ", 0) != 0) return;
    long long op = 0, proc = 0, start = 0, duration = 0;
    std::istringstream ls(line->substr(3));
    ls >> op >> proc >> start >> duration;
    std::ostringstream rewritten;
    rewritten << "op " << op << " 0 0 " << duration;
    *line = rewritten.str();
  });

  ScheduleCache cache(8, 2);
  const Status status = cache.Load(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruptArtifact);
  EXPECT_EQ(cache.size(), 0u) << "a corrupt snapshot must not half-load";

  // The service survives the same snapshot: it warns, cold-starts, and
  // re-solves rather than serving (or crashing on) the corrupt artifact.
  ScheduleService service(Opts(1, 64, path));
  EXPECT_EQ(service.cache().size(), 0u);
  SolveRequest request;
  request.problem = MakeProblem(3);
  auto result = service.Solve(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(service.Stats().solves, 1u);
  service.Shutdown();
  std::remove(path.c_str());
}

TEST(ScheduleServiceTest, ServeTimeVerificationRejectsSubtleCorruption) {
  const std::string path = "test_service_subtle.sscache";
  std::remove(path.c_str());
  auto problem = MakeProblem(5);
  Tick honest_latency = 0;
  {
    ScheduleService service(Opts(1, 64, path));
    SolveRequest request;
    request.problem = problem;
    auto result = service.Solve(request);
    ASSERT_TRUE(result.ok());
    honest_latency = (*result)->min_latency;
    service.Shutdown();
  }
  // Inflate the recorded minimal latency by one tick. The snapshot stays
  // structurally legal (entries untouched) so load accepts it; only the
  // spec-aware serve-time cross-check can see the metadata no longer
  // matches the schedule it describes.
  TamperSnapshot(path, [honest_latency](std::string* line) {
    if (line->rfind("entry ", 0) != 0) return;
    const std::string needle =
        " min_latency=" + std::to_string(honest_latency);
    const auto pos = line->find(needle);
    ASSERT_NE(pos, std::string::npos) << *line;
    line->replace(pos, needle.size(),
                  " min_latency=" + std::to_string(honest_latency + 1));
  });

  ScheduleService service(Opts(1, 64, path));
  ASSERT_EQ(service.cache().size(), 1u);
  SolveRequest request;
  request.problem = problem;

  auto rejected = service.Solve(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCorruptArtifact);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.corrupt_rejected, 1u);
  EXPECT_EQ(service.cache().Stats().invalidations, 1u);
  EXPECT_EQ(service.cache().size(), 0u) << "corrupt entry must be evicted";

  // With the corrupt entry gone the next request re-solves honestly.
  auto resolved = service.Solve(request);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*resolved)->min_latency, honest_latency);
  EXPECT_EQ(service.Stats().solves, 1u);
  service.Shutdown();
  std::remove(path.c_str());
}

TEST(TableBuilderTest, ParallelTableMatchesSerialPrecompute) {
  auto problem = MakeProblem(2, /*regimes=*/3);
  const regime::RegimeSpace space(1, 3);

  auto serial = regime::ScheduleTable::Precompute(
      space, problem->graph, problem->costs, problem->comm,
      problem->machine);
  ASSERT_TRUE(serial.ok());

  ScheduleService service(Opts(3));
  auto parallel = PrecomputeTableParallel(service, space, problem);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->size(), serial->size());
  for (RegimeId r : space.AllRegimes()) {
    EXPECT_EQ(parallel->Get(r).min_latency, serial->Get(r).min_latency);
    EXPECT_EQ(parallel->Get(r).schedule.initiation_interval,
              serial->Get(r).schedule.initiation_interval);
    EXPECT_EQ(parallel->Get(r).op_graph->op_count(),
              serial->Get(r).op_graph->op_count());
  }
  EXPECT_EQ(service.Stats().solves, space.size());
}

TEST(ServiceStatsTest, RendersATable) {
  ScheduleService service(Opts(1));
  SolveRequest request;
  request.problem = MakeProblem(0);
  ASSERT_TRUE(service.Solve(request).ok());
  const std::string table = service.Stats().ToTable();
  EXPECT_NE(table.find("requests"), std::string::npos);
  EXPECT_NE(table.find("solver invocations"), std::string::npos);
  EXPECT_NE(table.find("hit rate"), std::string::npos);
}

}  // namespace
}  // namespace ss::service
