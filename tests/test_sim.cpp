// Tests for the simulator stack: traces/Gantt, metrics, the deterministic
// schedule replayer, and the online ("pthread") scheduler model.
#include <gtest/gtest.h>

#include "graph/op_graph.hpp"
#include "regime/regime.hpp"
#include "sched/naive.hpp"
#include "sched/optimal.hpp"
#include "sim/metrics.hpp"
#include "sim/online_sim.hpp"
#include "sim/schedule_executor.hpp"
#include "sim/trace.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::sim {
namespace {

using graph::CommModel;
using graph::CostModel;
using graph::MachineConfig;
using graph::OpGraph;
using graph::TaskCost;
using graph::TaskGraph;

constexpr RegimeId kR0 = RegimeId(0);

// ---- trace -------------------------------------------------------------------

TEST(TraceTest, BusyAndEnd) {
  Trace t;
  t.Add({ProcId(0), 0, 100, "a", 0});
  t.Add({ProcId(0), 150, 200, "b", 1});
  t.Add({ProcId(1), 0, 50, "c", 0});
  EXPECT_EQ(t.BusyTime(ProcId(0)), 150);
  EXPECT_EQ(t.BusyTime(ProcId(1)), 50);
  EXPECT_EQ(t.EndTime(), 200);
  EXPECT_EQ(t.size(), 3u);
}

TEST(TraceTest, GanttRendersLabels) {
  Trace t;
  t.Add({ProcId(0), 0, ticks::FromMillis(200), "T2", 0});
  t.Add({ProcId(1), 0, ticks::FromMillis(100), "T3", 0});
  GanttOptions opts;
  opts.row_ticks = ticks::FromMillis(100);
  std::string chart = RenderGantt(t, 2, opts);
  EXPECT_NE(chart.find("T2#0"), std::string::npos);
  EXPECT_NE(chart.find("T3#0"), std::string::npos);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find("P1"), std::string::npos);
}

TEST(TraceTest, GanttEmptyTrace) {
  Trace t;
  EXPECT_EQ(RenderGantt(t, 2), "(empty trace)\n");
}

TEST(TraceTest, GanttTruncatesRows) {
  Trace t;
  t.Add({ProcId(0), 0, ticks::FromSeconds(100), "long", 0});
  GanttOptions opts;
  opts.row_ticks = ticks::FromMillis(100);
  opts.max_rows = 10;
  std::string chart = RenderGantt(t, 1, opts);
  EXPECT_NE(chart.find("more rows"), std::string::npos);
}

TEST(TraceTest, CsvExport) {
  Trace t;
  t.Add({ProcId(1), 100, 200, "T2", 5});
  t.Add({ProcId(0), 0, 50, "T1", kNoTimestamp});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("proc,start_us,end_us,label,frame"),
            std::string::npos);
  // Sorted by start: T1 row first, empty frame field.
  EXPECT_NE(csv.find("0,0,50,T1,\n"), std::string::npos);
  EXPECT_NE(csv.find("1,100,200,T2,5\n"), std::string::npos);
}

// ---- metrics ------------------------------------------------------------------

TEST(MetricsTest, LatencyAndThroughput) {
  std::vector<FrameRecord> frames;
  for (int i = 0; i < 10; ++i) {
    FrameRecord f;
    f.ts = i;
    f.digitized_at = i * 1'000'000;
    f.completed_at = f.digitized_at + 2'000'000;
    frames.push_back(f);
  }
  RunMetrics m = ComputeMetrics(frames, /*warmup=*/0);
  EXPECT_EQ(m.frames_completed, 10u);
  EXPECT_NEAR(m.latency_seconds.mean, 2.0, 1e-9);
  EXPECT_NEAR(m.interarrival_seconds.mean, 1.0, 1e-9);
  EXPECT_NEAR(m.uniformity_cov, 0.0, 1e-9);  // perfectly uniform
  EXPECT_GT(m.throughput_per_sec, 0.8);
}

TEST(MetricsTest, DropsCounted) {
  std::vector<FrameRecord> frames(4);
  frames[0] = {0, 0, 1'000'000};
  frames[1] = {1, kNoTick, kNoTick};  // dropped
  frames[2] = {2, 2'000'000, 3'000'000};
  frames[3] = {3, kNoTick, kNoTick};  // dropped
  RunMetrics m = ComputeMetrics(frames, 0);
  EXPECT_EQ(m.frames_completed, 2u);
  EXPECT_EQ(m.frames_dropped, 2u);
  EXPECT_DOUBLE_EQ(m.drop_fraction, 0.5);
}

TEST(MetricsTest, WarmupExcluded) {
  std::vector<FrameRecord> frames;
  // First completed frame has an atypical latency (pipeline fill).
  frames.push_back({0, 0, 500'000});
  for (int i = 1; i < 5; ++i) {
    frames.push_back({i, i * 1'000'000, i * 1'000'000 + 1'000'000});
  }
  RunMetrics without = ComputeMetrics(frames, 0);
  EXPECT_NEAR(without.latency_seconds.mean, 0.9, 1e-9);
  RunMetrics with_warmup = ComputeMetrics(frames, 1);
  EXPECT_NEAR(with_warmup.latency_seconds.mean, 1.0, 1e-9);
}

TEST(MetricsTest, EmptyInput) {
  RunMetrics m = ComputeMetrics({}, 0);
  EXPECT_EQ(m.frames_completed, 0u);
  EXPECT_FALSE(m.ToString().empty());
}

// ---- schedule replay -------------------------------------------------------------

class ReplayFixture : public ::testing::Test {
 protected:
  ReplayFixture() {
    tg_ = tracker::BuildTrackerGraph();
    space_ = std::make_unique<regime::RegimeSpace>(8, 8);
    tracker::PaperCostParams pcp;
    pcp.scale = 0.01;
    costs_ = tracker::PaperCostModel(tg_, *space_, pcp);
  }

  tracker::TrackerGraph tg_;
  std::unique_ptr<regime::RegimeSpace> space_;
  CostModel costs_;
};

TEST_F(ReplayFixture, OptimalScheduleReplayMatchesLatency) {
  sched::OptimalScheduler sched(tg_.graph, costs_, CommModel(),
                                MachineConfig::SingleNode(4));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  OpGraph og = OpGraph::Expand(tg_.graph, costs_, kR0,
                               result->best.iteration.variants());
  ScheduleRunOptions opts;
  opts.frames = 16;
  auto run = RunSchedule(result->best, og, opts);
  // The replayed latency is exactly the iteration latency for every frame.
  EXPECT_NEAR(run.metrics.latency_seconds.mean,
              ticks::ToSeconds(result->min_latency), 1e-9);
  EXPECT_NEAR(run.metrics.latency_seconds.min,
              run.metrics.latency_seconds.max, 1e-9);
  // Perfect uniformity by construction.
  EXPECT_NEAR(run.metrics.uniformity_cov, 0.0, 1e-9);
  EXPECT_FALSE(run.trace.empty());
}

TEST_F(ReplayFixture, DigitizerPeriodStretchesInterval) {
  sched::OptimalScheduler sched(tg_.graph, costs_, CommModel(),
                                MachineConfig::SingleNode(4));
  auto result = sched.Schedule(kR0);
  ASSERT_TRUE(result.ok());
  OpGraph og = OpGraph::Expand(tg_.graph, costs_, kR0,
                               result->best.iteration.variants());
  ScheduleRunOptions opts;
  opts.frames = 8;
  opts.digitizer_period = result->best.initiation_interval * 3;
  auto run = RunSchedule(result->best, og, opts);
  EXPECT_EQ(run.effective_interval, opts.digitizer_period);
  EXPECT_NEAR(run.metrics.interarrival_seconds.mean,
              ticks::ToSeconds(opts.digitizer_period), 1e-6);
}

// ---- online simulator --------------------------------------------------------------

class OnlineFixture : public ::testing::Test {
 protected:
  OnlineFixture() {
    tg_ = tracker::BuildTrackerGraph();
    space_ = std::make_unique<regime::RegimeSpace>(8, 8);
    tracker::PaperCostParams pcp;
    pcp.scale = 0.01;  // hundredths of the paper's seconds, fast sims
    costs_ = tracker::PaperCostModel(tg_, *space_, pcp);
  }

  OpGraph SerialOpGraph() {
    std::vector<VariantId> v(tg_.graph.task_count(), VariantId(0));
    return OpGraph::Expand(tg_.graph, costs_, kR0, v);
  }

  tracker::TrackerGraph tg_;
  std::unique_ptr<regime::RegimeSpace> space_;
  CostModel costs_;
};

TEST_F(OnlineFixture, CompletesAllFramesWhenUnderloaded) {
  OpGraph og = SerialOpGraph();
  OnlineSimOptions opts;
  // Slow digitizer: every frame fully drains before the next.
  opts.digitizer_period = og.TotalWork() * 2;
  opts.frames = 10;
  opts.quantum = ticks::FromMillis(10);
  OnlineSimulator sim(og, MachineConfig::SingleNode(4), opts);
  auto result = sim.Run();
  EXPECT_EQ(result.metrics.frames_completed, 10u);
  EXPECT_EQ(result.metrics.frames_dropped, 0u);
}

TEST_F(OnlineFixture, LatencyAtLeastCriticalPath) {
  OpGraph og = SerialOpGraph();
  OnlineSimOptions opts;
  opts.digitizer_period = og.TotalWork() * 2;
  opts.frames = 8;
  OnlineSimulator sim(og, MachineConfig::SingleNode(4), opts);
  auto result = sim.Run();
  ASSERT_GT(result.metrics.frames_completed, 0u);
  EXPECT_GE(result.metrics.latency_seconds.min,
            ticks::ToSeconds(og.CriticalPath()) - 1e-9);
}

TEST_F(OnlineFixture, SaturationDropsFramesAndRaisesLatency) {
  OpGraph og = SerialOpGraph();
  OnlineSimOptions fast;
  fast.digitizer_period = ticks::FromMillis(33);  // NTSC-speed firing
  fast.frames = 60;
  OnlineSimulator sim_fast(og, MachineConfig::SingleNode(4), fast);
  auto saturated = sim_fast.Run();

  OnlineSimOptions slow = fast;
  slow.digitizer_period = og.TotalWork() * 2;
  OnlineSimulator sim_slow(og, MachineConfig::SingleNode(4), slow);
  auto relaxed = sim_slow.Run();

  EXPECT_GT(saturated.metrics.frames_dropped, 0u);
  EXPECT_EQ(relaxed.metrics.frames_dropped, 0u);
  ASSERT_GT(saturated.metrics.frames_completed, 2u);
  // Backlog raises latency versus the relaxed run (the paper's tuning-curve
  // left edge versus right edge).
  EXPECT_GT(saturated.metrics.latency_seconds.mean,
            relaxed.metrics.latency_seconds.mean * 1.2);
  // But saturation yields higher throughput.
  EXPECT_GT(saturated.metrics.throughput_per_sec,
            relaxed.metrics.throughput_per_sec);
}

TEST_F(OnlineFixture, DataParallelVariantKeepsWorkersBusy) {
  // Expand T4 with its MP=models variant and check the simulation still
  // conserves frames and uses more processors.
  const auto& t4cost = costs_.Get(kR0, tg_.target_detection);
  int mp_variant = -1;
  for (std::size_t v = 0; v < t4cost.variant_count(); ++v) {
    if (t4cost.variant(VariantId(static_cast<int>(v))).chunks == 8) {
      mp_variant = static_cast<int>(v);
      break;
    }
  }
  ASSERT_GE(mp_variant, 0) << "expected an 8-chunk variant at 8 models";
  std::vector<VariantId> variants(tg_.graph.task_count(), VariantId(0));
  variants[tg_.target_detection.index()] = VariantId(mp_variant);
  OpGraph og = OpGraph::Expand(tg_.graph, costs_, kR0, variants);

  OnlineSimOptions opts;
  opts.digitizer_period = og.TotalWork();
  opts.frames = 8;
  opts.record_trace = true;
  OnlineSimulator sim(og, MachineConfig::SingleNode(4), opts);
  auto result = sim.Run();
  EXPECT_EQ(result.metrics.frames_completed, 8u);
  // All four processors saw work.
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(result.trace.BusyTime(ProcId(p)), 0) << "proc " << p;
  }
}

TEST_F(OnlineFixture, DeterministicAcrossRuns) {
  OpGraph og = SerialOpGraph();
  OnlineSimOptions opts;
  opts.digitizer_period = ticks::FromMillis(100);
  opts.frames = 20;
  OnlineSimulator a(og, MachineConfig::SingleNode(4), opts);
  OnlineSimulator b(og, MachineConfig::SingleNode(4), opts);
  auto ra = a.Run();
  auto rb = b.Run();
  EXPECT_EQ(ra.metrics.frames_completed, rb.metrics.frames_completed);
  EXPECT_EQ(ra.end_time, rb.end_time);
  EXPECT_DOUBLE_EQ(ra.metrics.latency_seconds.mean,
                   rb.metrics.latency_seconds.mean);
}

TEST_F(OnlineFixture, UtilizationBounded) {
  OpGraph og = SerialOpGraph();
  OnlineSimOptions opts;
  opts.digitizer_period = ticks::FromMillis(50);
  opts.frames = 20;
  OnlineSimulator sim(og, MachineConfig::SingleNode(4), opts);
  auto result = sim.Run();
  EXPECT_GT(result.proc_utilization, 0.0);
  EXPECT_LE(result.proc_utilization, 1.0 + 1e-9);
}

TEST_F(OnlineFixture, OldestFirstPolicyImprovesLatencyUnderLoad) {
  OpGraph og = SerialOpGraph();
  OnlineSimOptions base;
  base.digitizer_period = ticks::FromMillis(200);  // saturating
  base.frames = 40;
  base.queue_capacity = 3;
  OnlineSimOptions rr = base;
  rr.policy = OnlinePolicy::kRoundRobin;
  OnlineSimOptions off = base;
  off.policy = OnlinePolicy::kOldestFrameFirst;
  OnlineSimulator sim_rr(og, MachineConfig::SingleNode(4), rr);
  OnlineSimulator sim_off(og, MachineConfig::SingleNode(4), off);
  auto r_rr = sim_rr.Run();
  auto r_off = sim_off.Run();
  ASSERT_GT(r_rr.metrics.frames_completed, 2u);
  ASSERT_GT(r_off.metrics.frames_completed, 2u);
  // Frame-aware dispatch never hurts mean latency in this model.
  EXPECT_LE(r_off.metrics.latency_seconds.mean,
            r_rr.metrics.latency_seconds.mean + 1e-9);
}

TEST_F(OnlineFixture, QuantumSlicingPreservesWork) {
  // Tiny quantum forces many slices; total busy time must still equal the
  // executed work (plus context switches).
  OpGraph og = SerialOpGraph();
  OnlineSimOptions opts;
  opts.digitizer_period = og.TotalWork() * 2;
  opts.frames = 4;
  opts.quantum = ticks::FromMillis(1);
  opts.context_switch = 0;
  opts.record_trace = true;
  OnlineSimulator sim(og, MachineConfig::SingleNode(2), opts);
  auto result = sim.Run();
  EXPECT_EQ(result.metrics.frames_completed, 4u);
  Tick busy = 0;
  for (int p = 0; p < 2; ++p) busy += result.trace.BusyTime(ProcId(p));
  EXPECT_EQ(busy, og.TotalWork() * 4);
}

}  // namespace
}  // namespace ss::sim
