// Tests for Space-Time Memory: channel semantics (puts/gets/wildcards/
// ts_range neighbors), consume-driven garbage collection, capacity flow
// control, shutdown, the channel table and the work queue.
#include <gtest/gtest.h>

#include <thread>

#include "core/time.hpp"
#include "stm/channel.hpp"
#include "stm/channel_table.hpp"
#include "stm/work_queue.hpp"

namespace ss::stm {
namespace {

class ChannelFixture : public ::testing::Test {
 protected:
  ChannelFixture() : ch_(ChannelId(0), "test") {
    in_ = ch_.Attach(ConnDir::kInput);
    out_ = ch_.Attach(ConnDir::kOutput);
  }

  Status PutInt(Timestamp ts, int value,
                PutMode mode = PutMode::kNonBlocking) {
    return ch_.Put(out_, ts, Payload::Make<int>(value), mode);
  }

  Expected<int> GetInt(TsQuery q, GetMode mode = GetMode::kNonBlocking) {
    auto item = ch_.Get(in_, q, mode);
    if (!item.ok()) return item.status();
    return *item->payload.As<int>();
  }

  Channel ch_;
  ConnId in_;
  ConnId out_;
};

TEST_F(ChannelFixture, PutThenExactGet) {
  ASSERT_TRUE(PutInt(5, 55).ok());
  auto v = GetInt(TsQuery::Exact(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 55);
}

TEST_F(ChannelFixture, GetMissingReturnsNotFound) {
  auto v = GetInt(TsQuery::Exact(5));
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST_F(ChannelFixture, DuplicateTimestampRejected) {
  ASSERT_TRUE(PutInt(1, 10).ok());
  EXPECT_EQ(PutInt(1, 11).code(), StatusCode::kAlreadyExists);
}

TEST_F(ChannelFixture, ItemsMayArriveOutOfOrder) {
  ASSERT_TRUE(PutInt(7, 70).ok());
  ASSERT_TRUE(PutInt(3, 30).ok());
  ASSERT_TRUE(PutInt(5, 50).ok());
  EXPECT_EQ(*GetInt(TsQuery::Oldest()), 30);
  EXPECT_EQ(*GetInt(TsQuery::Newest()), 70);
  EXPECT_EQ(*GetInt(TsQuery::Exact(5)), 50);
}

TEST_F(ChannelFixture, NeighborsReportedOnExactMiss) {
  ASSERT_TRUE(PutInt(2, 20).ok());
  ASSERT_TRUE(PutInt(8, 80).ok());
  TsNeighbors nb;
  auto item = ch_.Get(in_, TsQuery::Exact(5), GetMode::kNonBlocking, &nb);
  EXPECT_FALSE(item.ok());
  ASSERT_TRUE(nb.before.has_value());
  ASSERT_TRUE(nb.after.has_value());
  EXPECT_EQ(*nb.before, 2);
  EXPECT_EQ(*nb.after, 8);
}

TEST_F(ChannelFixture, NeighborsPartialWhenOnOneSide) {
  ASSERT_TRUE(PutInt(2, 20).ok());
  TsNeighbors nb;
  (void)ch_.Get(in_, TsQuery::Exact(5), GetMode::kNonBlocking, &nb);
  EXPECT_TRUE(nb.before.has_value());
  EXPECT_FALSE(nb.after.has_value());
}

TEST_F(ChannelFixture, NewestUnseenAdvances) {
  ASSERT_TRUE(PutInt(1, 10).ok());
  EXPECT_EQ(*GetInt(TsQuery::NewestUnseen()), 10);
  // Nothing new yet.
  EXPECT_EQ(GetInt(TsQuery::NewestUnseen()).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(PutInt(2, 20).ok());
  EXPECT_EQ(*GetInt(TsQuery::NewestUnseen()), 20);
}

TEST_F(ChannelFixture, AfterQueryReturnsOldestNewer) {
  ASSERT_TRUE(PutInt(2, 20).ok());
  ASSERT_TRUE(PutInt(4, 40).ok());
  ASSERT_TRUE(PutInt(6, 60).ok());
  auto item = ch_.Get(in_, TsQuery::After(2), GetMode::kNonBlocking);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->ts, 4);
}

TEST_F(ChannelFixture, ConsumeDrivesGarbageCollection) {
  for (Timestamp t = 0; t < 5; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  EXPECT_EQ(ch_.Occupancy(), 5u);
  ASSERT_TRUE(ch_.Consume(in_, 2).ok());
  EXPECT_EQ(ch_.Occupancy(), 2u);
  EXPECT_EQ(ch_.Stats().reclaimed, 3u);
  ASSERT_TRUE(ch_.GcFrontier().has_value());
  EXPECT_EQ(*ch_.GcFrontier(), 2);
}

TEST_F(ChannelFixture, GcWaitsForAllInputConnections) {
  ConnId in2 = ch_.Attach(ConnDir::kInput);
  for (Timestamp t = 0; t < 4; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  ASSERT_TRUE(ch_.Consume(in_, 3).ok());
  EXPECT_EQ(ch_.Occupancy(), 4u);  // in2 has not consumed
  ASSERT_TRUE(ch_.Consume(in2, 1).ok());
  EXPECT_EQ(ch_.Occupancy(), 2u);  // min(3, 1) = 1 reclaimed 0..1
}

TEST_F(ChannelFixture, DetachedConnectionNoLongerPinsItems) {
  ConnId in2 = ch_.Attach(ConnDir::kInput);
  for (Timestamp t = 0; t < 4; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  ASSERT_TRUE(ch_.Consume(in_, 3).ok());
  EXPECT_EQ(ch_.Occupancy(), 4u);
  ch_.Detach(in2);
  EXPECT_EQ(ch_.Occupancy(), 0u);
}

TEST_F(ChannelFixture, GetBelowGcFrontierIsOutOfRange) {
  for (Timestamp t = 0; t < 3; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  ASSERT_TRUE(ch_.Consume(in_, 1).ok());
  EXPECT_EQ(GetInt(TsQuery::Exact(0)).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ChannelFixture, PutBelowGcFrontierRejected) {
  for (Timestamp t = 0; t < 3; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  ASSERT_TRUE(ch_.Consume(in_, 1).ok());
  EXPECT_EQ(PutInt(0, 99).code(), StatusCode::kOutOfRange);
}

TEST_F(ChannelFixture, PutOnInputConnectionFails) {
  EXPECT_EQ(ch_.Put(in_, 0, Payload::Make<int>(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ChannelFixture, GetOnOutputConnectionFails) {
  EXPECT_EQ(ch_.Get(out_, TsQuery::Newest()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ChannelFixture, InvalidConnectionRejected) {
  EXPECT_EQ(ch_.Put(ConnId(), 0, Payload::Make<int>(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ch_.Get(ConnId(99), TsQuery::Newest()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ChannelFixture, StatsTrackOccupancyHighWater) {
  for (Timestamp t = 0; t < 6; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  ASSERT_TRUE(ch_.Consume(in_, 5).ok());
  auto stats = ch_.Stats();
  EXPECT_EQ(stats.puts, 6u);
  EXPECT_EQ(stats.max_occupancy, 6u);
  EXPECT_EQ(stats.occupancy, 0u);
}

TEST(ChannelCapacityTest, NonBlockingPutFailsWhenFull) {
  Channel ch(ChannelId(0), "bounded", ChannelOptions{2});
  ConnId out = ch.Attach(ConnDir::kOutput);
  EXPECT_TRUE(ch.Put(out, 0, Payload::Make<int>(0),
                     PutMode::kNonBlocking).ok());
  EXPECT_TRUE(ch.Put(out, 1, Payload::Make<int>(1),
                     PutMode::kNonBlocking).ok());
  EXPECT_EQ(ch.Put(out, 2, Payload::Make<int>(2),
                   PutMode::kNonBlocking).code(),
            StatusCode::kWouldBlock);
}

TEST(ChannelCapacityTest, DropOldestMakesRoom) {
  Channel ch(ChannelId(0), "bounded", ChannelOptions{2});
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  EXPECT_TRUE(ch.Put(out, 0, Payload::Make<int>(0)).ok());
  EXPECT_TRUE(ch.Put(out, 1, Payload::Make<int>(1)).ok());
  EXPECT_TRUE(ch.Put(out, 2, Payload::Make<int>(2),
                     PutMode::kDropOldest).ok());
  EXPECT_EQ(ch.Occupancy(), 2u);
  EXPECT_EQ(ch.Stats().dropped, 1u);
  auto oldest = ch.Get(in, TsQuery::Oldest(), GetMode::kNonBlocking);
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(oldest->ts, 1);
}

TEST(ChannelCapacityTest, DropOldestRejectsStaleInsert) {
  Channel ch(ChannelId(0), "bounded", ChannelOptions{2});
  ConnId out = ch.Attach(ConnDir::kOutput);
  EXPECT_TRUE(ch.Put(out, 5, Payload::Make<int>(0)).ok());
  EXPECT_TRUE(ch.Put(out, 6, Payload::Make<int>(1)).ok());
  // Inserting ts=3 would evict ts=5 and land below the frontier.
  EXPECT_EQ(ch.Put(out, 3, Payload::Make<int>(2),
                   PutMode::kDropOldest).code(),
            StatusCode::kOutOfRange);
}

TEST(ChannelBlockingTest, BlockingGetWokenByPut) {
  Channel ch(ChannelId(0), "blocking");
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(ch.Put(out, 1, Payload::Make<int>(42)).ok());
  });
  auto item = ch.Get(in, TsQuery::Exact(1), GetMode::kBlocking);
  producer.join();
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item->payload.As<int>(), 42);
}

TEST(ChannelBlockingTest, BlockingPutWokenByConsume) {
  Channel ch(ChannelId(0), "blocking", ChannelOptions{1});
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  ASSERT_TRUE(ch.Put(out, 0, Payload::Make<int>(0)).ok());
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(ch.Consume(in, 0).ok());
  });
  EXPECT_TRUE(ch.Put(out, 1, Payload::Make<int>(1),
                     PutMode::kBlocking).ok());
  consumer.join();
  EXPECT_GE(ch.Stats().blocked_puts, 1u);
}

TEST(ChannelBlockingTest, GetForTimesOut) {
  Channel ch(ChannelId(0), "deadline");
  ConnId in = ch.Attach(ConnDir::kInput);
  Stopwatch sw;
  auto item = ch.GetFor(in, TsQuery::Exact(1), ticks::FromMillis(30));
  EXPECT_EQ(item.status().code(), StatusCode::kWouldBlock);
  EXPECT_GE(sw.Elapsed(), ticks::FromMillis(25));
  EXPECT_LT(sw.Elapsed(), ticks::FromSeconds(2));
}

TEST(ChannelBlockingTest, GetForReturnsWhenItemArrives) {
  Channel ch(ChannelId(0), "deadline");
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(ch.Put(out, 1, Payload::Make<int>(7)).ok());
  });
  auto item = ch.GetFor(in, TsQuery::Exact(1), ticks::FromSeconds(5));
  producer.join();
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item->payload.As<int>(), 7);
}

TEST(ChannelBlockingTest, GetForFailsFastBelowGcFrontier) {
  Channel ch(ChannelId(0), "deadline");
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  ASSERT_TRUE(ch.Put(out, 0, Payload::Make<int>(0)).ok());
  ASSERT_TRUE(ch.Consume(in, 0).ok());
  Stopwatch sw;
  auto item = ch.GetFor(in, TsQuery::Exact(0), ticks::FromSeconds(5));
  // OutOfRange can never be satisfied: no waiting.
  EXPECT_EQ(item.status().code(), StatusCode::kOutOfRange);
  EXPECT_LT(sw.Elapsed(), ticks::FromSeconds(1));
}

TEST(ChannelBlockingTest, ShutdownWakesBlockedGet) {
  Channel ch(ChannelId(0), "blocking");
  ConnId in = ch.Attach(ConnDir::kInput);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Shutdown();
  });
  auto item = ch.Get(in, TsQuery::Exact(1), GetMode::kBlocking);
  closer.join();
  EXPECT_EQ(item.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(ch.shut_down());
}

TEST(ChannelBlockingTest, ShutdownDrainsExistingItems) {
  Channel ch(ChannelId(0), "drain");
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  ASSERT_TRUE(ch.Put(out, 0, Payload::Make<int>(10)).ok());
  ASSERT_TRUE(ch.Put(out, 1, Payload::Make<int>(11)).ok());
  ch.Shutdown();
  // Existing items stay readable after shutdown (drain semantics)...
  auto item = ch.Get(in, TsQuery::Exact(1), GetMode::kNonBlocking);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item->payload.As<int>(), 11);
  // ...but missing items report cancellation instead of waiting,
  EXPECT_EQ(ch.Get(in, TsQuery::Exact(5), GetMode::kBlocking)
                .status()
                .code(),
            StatusCode::kCancelled);
  // and new puts are rejected.
  EXPECT_EQ(ch.Put(out, 2, Payload::Make<int>(12)).code(),
            StatusCode::kCancelled);
}

TEST(ChannelBlockingTest, ConcurrentProducerConsumerInOrder) {
  Channel ch(ChannelId(0), "stream", ChannelOptions{4});
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  constexpr int kN = 200;
  std::thread producer([&] {
    for (Timestamp t = 0; t < kN; ++t) {
      ASSERT_TRUE(ch.Put(out, t, Payload::Make<int>(static_cast<int>(t) * 3),
                         PutMode::kBlocking).ok());
    }
  });
  for (Timestamp t = 0; t < kN; ++t) {
    auto item = ch.Get(in, TsQuery::Exact(t), GetMode::kBlocking);
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(*item->payload.As<int>(), static_cast<int>(t) * 3);
    ASSERT_TRUE(ch.Consume(in, t).ok());
  }
  producer.join();
  // Flow control bounded occupancy the whole way.
  EXPECT_LE(ch.Stats().max_occupancy, 4u);
}

TEST(ChannelTest, LateAttachingInputStartsAtGcFrontier) {
  Channel ch(ChannelId(0), "late");
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  for (Timestamp t = 0; t < 4; ++t) {
    ASSERT_TRUE(ch.Put(out, t, Payload::Make<int>(0)).ok());
  }
  ASSERT_TRUE(ch.Consume(in, 1).ok());
  // A new input connection must not block GC below the current frontier.
  ConnId in2 = ch.Attach(ConnDir::kInput);
  ASSERT_TRUE(ch.Consume(in, 3).ok());
  EXPECT_EQ(ch.Occupancy(), 2u);  // pinned by in2's frontier at 1
  ASSERT_TRUE(ch.Consume(in2, 3).ok());
  EXPECT_EQ(ch.Occupancy(), 0u);
}

TEST(ChannelTest, TypedHelpers) {
  Channel ch(ChannelId(0), "typed");
  ConnId in = ch.Attach(ConnDir::kInput);
  ConnId out = ch.Attach(ConnDir::kOutput);
  ASSERT_TRUE(ch.PutValue<std::string>(out, 0, "hello").ok());
  auto got = ch.GetValue<std::string>(in, TsQuery::Newest(),
                                      GetMode::kNonBlocking);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->first, 0);
  EXPECT_EQ(*got->second, "hello");
}

// ---- channel table ------------------------------------------------------------

TEST(ChannelTableTest, CreateAndFind) {
  ChannelTable table;
  auto created = table.Create("frames", ChannelOptions{8}, NodeId(1));
  ASSERT_TRUE(created.ok());
  auto found = table.Find("frames");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*created, *found);
  EXPECT_EQ(table.Home((*found)->id()), NodeId(1));
  EXPECT_EQ(table.size(), 1u);
}

TEST(ChannelTableTest, DuplicateNameRejected) {
  ChannelTable table;
  ASSERT_TRUE(table.Create("x").ok());
  EXPECT_EQ(table.Create("x").status().code(), StatusCode::kAlreadyExists);
}

TEST(ChannelTableTest, FindMissingFails) {
  ChannelTable table;
  EXPECT_EQ(table.Find("nope").status().code(), StatusCode::kNotFound);
}

TEST(ChannelTableTest, GetByIdAndStats) {
  ChannelTable table;
  auto a = table.Create("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(table.Get((*a)->id()), *a);
  EXPECT_EQ(table.Get(ChannelId(42)), nullptr);
  auto stats = table.AllStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].first, "a");
}

TEST(ChannelTableTest, ShutdownAllWakesWaiters) {
  ChannelTable table;
  auto ch = table.Create("c");
  ASSERT_TRUE(ch.ok());
  ConnId in = (*ch)->Attach(ConnDir::kInput);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    table.ShutdownAll();
  });
  auto item = (*ch)->Get(in, TsQuery::Newest(), GetMode::kBlocking);
  closer.join();
  EXPECT_EQ(item.status().code(), StatusCode::kCancelled);
}

// ---- storage modes ---------------------------------------------------------------

TEST(StorageModeTest, AutoResolvesFromCapacity) {
  Channel unbounded(ChannelId(0), "u");
  EXPECT_EQ(unbounded.storage_mode(), StorageMode::kMap);
  Channel small(ChannelId(1), "s", ChannelOptions{8});
  EXPECT_EQ(small.storage_mode(), StorageMode::kRing);
  Channel big(ChannelId(2), "b",
              ChannelOptions{kRingAutoMaxCapacity + 1});
  EXPECT_EQ(big.storage_mode(), StorageMode::kMap);
  Channel forced(ChannelId(3), "f", ChannelOptions{8, StorageMode::kMap});
  EXPECT_EQ(forced.storage_mode(), StorageMode::kMap);
}

/// ChannelFixture's semantics, over ring storage.
class RingChannelFixture : public ::testing::Test {
 protected:
  RingChannelFixture()
      : ch_(ChannelId(0), "ring",
            ChannelOptions{8, StorageMode::kRing}) {
    in_ = ch_.Attach(ConnDir::kInput);
    out_ = ch_.Attach(ConnDir::kOutput);
  }

  Status PutInt(Timestamp ts, int value,
                PutMode mode = PutMode::kNonBlocking) {
    return ch_.Put(out_, ts, Payload::Make<int>(value), mode);
  }

  Expected<int> GetInt(TsQuery q, GetMode mode = GetMode::kNonBlocking) {
    auto item = ch_.Get(in_, q, mode);
    if (!item.ok()) return item.status();
    return *item->payload.As<int>();
  }

  Channel ch_;
  ConnId in_;
  ConnId out_;
};

TEST_F(RingChannelFixture, OutOfOrderPutsStaySorted) {
  ASSERT_TRUE(PutInt(7, 70).ok());
  ASSERT_TRUE(PutInt(3, 30).ok());
  ASSERT_TRUE(PutInt(5, 50).ok());
  EXPECT_EQ(*GetInt(TsQuery::Oldest()), 30);
  EXPECT_EQ(*GetInt(TsQuery::Newest()), 70);
  EXPECT_EQ(*GetInt(TsQuery::Exact(5)), 50);
  EXPECT_EQ(GetInt(TsQuery::Exact(4)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RingChannelFixture, NeighborsReportedOnExactMiss) {
  ASSERT_TRUE(PutInt(2, 20).ok());
  ASSERT_TRUE(PutInt(8, 80).ok());
  TsNeighbors nb;
  auto item = ch_.Get(in_, TsQuery::Exact(5), GetMode::kNonBlocking, &nb);
  EXPECT_FALSE(item.ok());
  ASSERT_TRUE(nb.before.has_value());
  ASSERT_TRUE(nb.after.has_value());
  EXPECT_EQ(*nb.before, 2);
  EXPECT_EQ(*nb.after, 8);
}

TEST_F(RingChannelFixture, GcAndWrapAroundPreserveOrder) {
  for (Timestamp t = 0; t < 8; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  ASSERT_TRUE(ch_.Consume(in_, 3).ok());
  EXPECT_EQ(ch_.Occupancy(), 4u);
  // These inserts wrap the circular window past its physical end.
  for (Timestamp t = 8; t < 12; ++t) {
    ASSERT_TRUE(PutInt(t, static_cast<int>(t)).ok());
  }
  EXPECT_EQ(ch_.Occupancy(), 8u);
  EXPECT_EQ(*ch_.OldestTs(), 4);
  EXPECT_EQ(*ch_.NewestTs(), 11);
  EXPECT_EQ(*GetInt(TsQuery::Exact(9)), 9);
  auto after = ch_.Get(in_, TsQuery::After(7), GetMode::kNonBlocking);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->ts, 8);
}

TEST_F(RingChannelFixture, FullRingRejectsAndDropsLikeMapMode) {
  for (Timestamp t = 0; t < 8; ++t) ASSERT_TRUE(PutInt(t, 0).ok());
  EXPECT_EQ(PutInt(8, 0).code(), StatusCode::kWouldBlock);
  ASSERT_TRUE(PutInt(8, 0, PutMode::kDropOldest).ok());
  EXPECT_EQ(*ch_.OldestTs(), 1);
  EXPECT_EQ(ch_.Stats().dropped, 1u);
  // A stale insert below the drop frontier is rejected even with room.
  ASSERT_TRUE(ch_.Consume(in_, 5).ok());
  EXPECT_EQ(PutInt(0, 0, PutMode::kDropOldest).code(),
            StatusCode::kOutOfRange);
}

TEST_F(RingChannelFixture, DuplicateTimestampRejected) {
  ASSERT_TRUE(PutInt(1, 10).ok());
  EXPECT_EQ(PutInt(1, 11).code(), StatusCode::kAlreadyExists);
}

// ---- batched puts and gets -------------------------------------------------------

TEST(ChannelBatchTest, PutBatchInsertsAllUnderOneCall) {
  Channel ch(ChannelId(0), "b");
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  std::vector<Item> items;
  for (Timestamp t = 0; t < 5; ++t) {
    items.push_back(Item{t, Payload::Make<int>(static_cast<int>(t) * 10)});
  }
  ASSERT_TRUE(ch.PutBatch(out, std::move(items)).ok());
  EXPECT_EQ(ch.Occupancy(), 5u);
  auto stats = ch.Stats();
  EXPECT_EQ(stats.batch_puts, 1u);
  EXPECT_EQ(stats.puts, 5u);
  for (Timestamp t = 0; t < 5; ++t) {
    auto item = ch.Get(in, TsQuery::Exact(t), GetMode::kNonBlocking);
    ASSERT_TRUE(item.ok());
    EXPECT_EQ(*item->payload.As<int>(), static_cast<int>(t) * 10);
  }
}

TEST(ChannelBatchTest, PutBatchStopsAtFirstFailureKeepingPrefix) {
  Channel ch(ChannelId(0), "b");
  ConnId out = ch.Attach(ConnDir::kOutput);
  ASSERT_TRUE(ch.Put(out, 2, Payload::Make<int>(0)).ok());
  std::vector<Item> items;
  for (Timestamp t = 0; t < 4; ++t) {
    items.push_back(Item{t, Payload::Make<int>(0)});
  }
  EXPECT_EQ(ch.PutBatch(out, std::move(items)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(ch.Occupancy(), 3u);  // pre-existing 2 plus the 0,1 prefix
  EXPECT_EQ(*ch.NewestTs(), 2);   // 3 was never inserted
}

TEST(ChannelBatchTest, GetBatchMixesRequiredAndOptional) {
  Channel ch(ChannelId(0), "b");
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  ASSERT_TRUE(ch.Put(out, 5, Payload::Make<int>(55)).ok());
  auto got = ch.GetBatch(in,
                         {BatchGet{TsQuery::Exact(5), true},
                          BatchGet{TsQuery::Exact(4), false}},
                         GetMode::kNonBlocking);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].ts, 5);
  EXPECT_EQ(*(*got)[0].payload.As<int>(), 55);
  EXPECT_EQ((*got)[1].ts, kNoTimestamp);  // optional miss -> empty item
  EXPECT_TRUE((*got)[1].payload.empty());
  auto stats = ch.Stats();
  EXPECT_EQ(stats.batch_gets, 1u);
  EXPECT_EQ(stats.failed_gets, 1u);
}

TEST(ChannelBatchTest, GetBatchRequiredMissFailsNonBlocking) {
  Channel ch(ChannelId(0), "b");
  (void)ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  auto got = ch.GetBatch(in, {BatchGet{TsQuery::Exact(1), true}},
                         GetMode::kNonBlocking);
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(ChannelBatchTest, GetBatchBlocksPerRequiredQuery) {
  Channel ch(ChannelId(0), "b");
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(ch.Put(out, 1, Payload::Make<int>(10)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(ch.Put(out, 2, Payload::Make<int>(20)).ok());
  });
  auto got = ch.GetBatch(in,
                         {BatchGet{TsQuery::Exact(1), true},
                          BatchGet{TsQuery::Exact(2), true}},
                         GetMode::kBlocking);
  producer.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*(*got)[0].payload.As<int>(), 10);
  EXPECT_EQ(*(*got)[1].payload.As<int>(), 20);
}

TEST(ChannelBatchTest, GetBatchOnOutputConnectionFails) {
  Channel ch(ChannelId(0), "b");
  ConnId out = ch.Attach(ConnDir::kOutput);
  auto got = ch.GetBatch(out, {BatchGet{TsQuery::Newest(), true}},
                         GetMode::kNonBlocking);
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

// ---- pooled payloads -------------------------------------------------------------

TEST(ChannelPoolTest, PutValuePooledRoundTrips) {
  Channel ch(ChannelId(0), "p", ChannelOptions{8});
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  ASSERT_TRUE(ch.PutValuePooled<int>(out, 1, 42).ok());
  auto item = ch.Get(in, TsQuery::Exact(1), GetMode::kNonBlocking);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item->payload.As<int>(), 42);
  EXPECT_GE(ch.pool().stats().allocations, 1u);
}

TEST(ChannelPoolTest, PoolRecyclesReclaimedBuffers) {
  Channel ch(ChannelId(0), "p", ChannelOptions{4});
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  for (Timestamp t = 0; t < 64; ++t) {
    ASSERT_TRUE(ch.PutValuePooled<int>(out, t, static_cast<int>(t)).ok());
    auto item = ch.Get(in, TsQuery::Exact(t), GetMode::kNonBlocking);
    ASSERT_TRUE(item.ok());
    ASSERT_TRUE(ch.Consume(in, t).ok());
  }
  auto stats = ch.pool().stats();
  EXPECT_GT(stats.reuses, 0u);
  // Steady state: the working set of buffers is bounded, not 64 deep.
  EXPECT_LT(stats.allocations, 16u);
}

TEST(ChannelPoolTest, PayloadOutlivesPool) {
  Payload escaped;
  {
    PayloadPool pool;
    escaped = Payload::MakePooled<int>(pool, 7);
  }
  EXPECT_EQ(*escaped.As<int>(), 7);
}

// ---- wakeup discipline and stats -------------------------------------------------

TEST(ChannelStatsTest, NotifySuppressedWithoutWaiters) {
  Channel ch(ChannelId(0), "w");
  ConnId out = ch.Attach(ConnDir::kOutput);
  (void)ch.Attach(ConnDir::kInput);
  ASSERT_TRUE(ch.Put(out, 1, Payload::Make<int>(1)).ok());
  auto stats = ch.Stats();
  EXPECT_EQ(stats.notifies_sent, 0u);
  EXPECT_GE(stats.notifies_suppressed, 1u);
}

TEST(ChannelStatsTest, NotifySentWhenGetterWaits) {
  Channel ch(ChannelId(0), "w");
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  std::thread getter([&] {
    auto item = ch.Get(in, TsQuery::Exact(1), GetMode::kBlocking);
    ASSERT_TRUE(item.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(ch.Put(out, 1, Payload::Make<int>(1)).ok());
  getter.join();
  EXPECT_GE(ch.Stats().notifies_sent, 1u);
}

TEST(ChannelStatsTest, SnapshotInvariantHoldsAfterMixedTraffic) {
  Channel ch(ChannelId(0), "inv", ChannelOptions{4});
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  for (Timestamp t = 0; t < 32; ++t) {
    (void)ch.Put(out, t, Payload::Make<int>(0), PutMode::kDropOldest);
    if (t % 3 == 0) (void)ch.Consume(in, t - 2);
  }
  auto s = ch.Stats();
  EXPECT_EQ(s.puts, s.reclaimed + s.dropped + s.occupancy);
}

// ---- work queue ------------------------------------------------------------------

TEST(WorkQueueTest, FifoOrder) {
  WorkQueue<int> q;
  ASSERT_TRUE(q.Push(1).ok());
  ASSERT_TRUE(q.Push(2).ok());
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(WorkQueueTest, TryPopEmptyReturnsNothing) {
  WorkQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(WorkQueueTest, CapacityEnforcedByTryPush) {
  WorkQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1).ok());
  EXPECT_EQ(q.TryPush(2).code(), StatusCode::kWouldBlock);
}

TEST(WorkQueueTest, ShutdownDrainsThenEnds) {
  WorkQueue<int> q;
  ASSERT_TRUE(q.Push(7).ok());
  q.Shutdown();
  EXPECT_EQ(*q.Pop(), 7);          // drains existing item
  EXPECT_FALSE(q.Pop().has_value());  // then reports end
  EXPECT_EQ(q.Push(8).code(), StatusCode::kCancelled);
}

TEST(WorkQueueTest, PushBatchKeepsFifoOrder) {
  WorkQueue<int> q;
  ASSERT_TRUE(q.PushBatch({1, 2, 3}).ok());
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(WorkQueueTest, PushBatchBlocksForSpacePerItem) {
  WorkQueue<int> q(2);
  std::thread consumer([&] {
    for (int i = 0; i < 6; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      auto v = q.Pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
  });
  ASSERT_TRUE(q.PushBatch({0, 1, 2, 3, 4, 5}).ok());
  consumer.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueueTest, PushBatchAfterShutdownCancelled) {
  WorkQueue<int> q;
  q.Shutdown();
  EXPECT_EQ(q.PushBatch({1, 2}).code(), StatusCode::kCancelled);
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueueTest, ManyProducersManyConsumers) {
  WorkQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i).ok());
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (count.load() < kProducers * kPerProducer) {
        auto v = q.TryPop();
        if (v) {
          sum.fetch_add(*v);
          count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace ss::stm
