// Model-based property test for Space-Time Memory.
//
// A simple reference model (ordered map + per-connection frontiers,
// sequential semantics) is driven with the same randomized operation
// sequence as the real Channel; every observable result must agree. This
// catches semantic drift that example-based tests miss.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "stm/channel.hpp"

namespace ss::stm {
namespace {

/// Sequential reference implementation of the channel semantics.
class ModelChannel {
 public:
  explicit ModelChannel(std::size_t capacity) : capacity_(capacity) {}

  struct Conn {
    ConnDir dir;
    bool attached = true;
    Timestamp last_got = kNoTimestamp;
    Timestamp frontier = kNoTimestamp;
  };

  int Attach(ConnDir dir) {
    Conn c{dir};
    if (dir == ConnDir::kInput && gc_frontier_) c.frontier = *gc_frontier_;
    conns_.push_back(c);
    return static_cast<int>(conns_.size() - 1);
  }

  void Detach(int conn) {
    conns_[static_cast<std::size_t>(conn)].attached = false;
    Reclaim();
  }

  StatusCode Put(int conn, Timestamp ts, int value) {
    const Conn& c = conns_[static_cast<std::size_t>(conn)];
    if (!c.attached) return StatusCode::kInvalidArgument;
    if (c.dir != ConnDir::kOutput) return StatusCode::kFailedPrecondition;
    if (gc_frontier_ && ts <= *gc_frontier_) return StatusCode::kOutOfRange;
    if (items_.count(ts)) return StatusCode::kAlreadyExists;
    if (capacity_ != 0 && items_.size() >= capacity_) {
      return StatusCode::kWouldBlock;
    }
    items_[ts] = value;
    return StatusCode::kOk;
  }

  /// Returns (code, ts, value).
  std::tuple<StatusCode, Timestamp, int> Get(int conn, const TsQuery& q) {
    Conn& c = conns_[static_cast<std::size_t>(conn)];
    if (!c.attached) return {StatusCode::kInvalidArgument, 0, 0};
    if (c.dir != ConnDir::kInput) {
      return {StatusCode::kFailedPrecondition, 0, 0};
    }
    std::map<Timestamp, int>::iterator it = items_.end();
    switch (q.kind) {
      case TsQueryKind::kExact:
        it = items_.find(q.ts);
        if (it == items_.end()) {
          if (gc_frontier_ && q.ts <= *gc_frontier_) {
            return {StatusCode::kOutOfRange, 0, 0};
          }
          return {StatusCode::kNotFound, 0, 0};
        }
        break;
      case TsQueryKind::kNewest:
        if (items_.empty()) return {StatusCode::kNotFound, 0, 0};
        it = std::prev(items_.end());
        break;
      case TsQueryKind::kOldest:
        if (items_.empty()) return {StatusCode::kNotFound, 0, 0};
        it = items_.begin();
        break;
      case TsQueryKind::kNewestUnseen:
        if (items_.empty()) return {StatusCode::kNotFound, 0, 0};
        it = std::prev(items_.end());
        if (it->first <= c.last_got) return {StatusCode::kNotFound, 0, 0};
        break;
      case TsQueryKind::kAfter:
        it = items_.upper_bound(q.ts);
        if (it == items_.end()) return {StatusCode::kNotFound, 0, 0};
        break;
    }
    c.last_got = std::max(c.last_got, it->first);
    return {StatusCode::kOk, it->first, it->second};
  }

  StatusCode Consume(int conn, Timestamp ts) {
    Conn& c = conns_[static_cast<std::size_t>(conn)];
    if (!c.attached) return StatusCode::kInvalidArgument;
    if (c.dir != ConnDir::kInput) return StatusCode::kFailedPrecondition;
    c.frontier = std::max(c.frontier, ts);
    Reclaim();
    return StatusCode::kOk;
  }

  std::size_t Occupancy() const { return items_.size(); }
  std::optional<Timestamp> GcFrontier() const { return gc_frontier_; }

 private:
  void Reclaim() {
    bool any_input = false;
    Timestamp min_frontier = kTickInfinity;
    for (const auto& c : conns_) {
      if (!c.attached || c.dir != ConnDir::kInput) continue;
      any_input = true;
      min_frontier = std::min(min_frontier, c.frontier);
    }
    if (!any_input) return;
    auto end = items_.upper_bound(min_frontier);
    if (end == items_.begin()) return;
    gc_frontier_ = gc_frontier_
                       ? std::max(*gc_frontier_, std::prev(end)->first)
                       : std::prev(end)->first;
    items_.erase(items_.begin(), end);
  }

  std::size_t capacity_;
  std::map<Timestamp, int> items_;
  std::vector<Conn> conns_;
  std::optional<Timestamp> gc_frontier_;
};

// Each seed runs twice: once against map storage and once against ring
// storage (forcing a capacity when the seed drew an unbounded channel), so
// both data-plane backends are held to the same sequential semantics.
class StmModelProperty
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(StmModelProperty, RealChannelAgreesWithModel) {
  const auto [seed, force_ring] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 3);
  std::size_t capacity = rng.NextBelow(2) ? 0 : 4 + rng.NextBelow(8);
  if (force_ring && capacity == 0) capacity = 4 + rng.NextBelow(8);
  const ChannelOptions options{
      capacity, force_ring ? StorageMode::kRing : StorageMode::kMap};
  Channel real(ChannelId(0), "model-test", options);
  ASSERT_EQ(real.storage_mode(),
            force_ring ? StorageMode::kRing : StorageMode::kMap);
  ModelChannel model(capacity);

  // A fixed population of connections (some attached later, some detached
  // mid-run).
  std::vector<ConnId> real_conns;
  std::vector<int> model_conns;
  std::vector<ConnDir> dirs;
  auto attach = [&](ConnDir dir) {
    real_conns.push_back(real.Attach(dir));
    model_conns.push_back(model.Attach(dir));
    dirs.push_back(dir);
  };
  attach(ConnDir::kOutput);
  attach(ConnDir::kInput);
  attach(ConnDir::kInput);

  for (int step = 0; step < 800; ++step) {
    const auto op = rng.NextBelow(100);
    const auto pick = rng.NextBelow(real_conns.size());
    const ConnId rc = real_conns[pick];
    const int mc = model_conns[pick];
    const auto ts = static_cast<Timestamp>(rng.NextBelow(40));

    if (op < 40) {  // put
      const int value = static_cast<int>(rng.NextBelow(1000));
      Status s = real.Put(rc, ts, Payload::Make<int>(value),
                          PutMode::kNonBlocking);
      StatusCode m = model.Put(mc, ts, value);
      ASSERT_EQ(s.code(), m) << "put ts=" << ts << " step " << step;
    } else if (op < 75) {  // get (random query kind)
      TsQuery q;
      switch (rng.NextBelow(5)) {
        case 0: q = TsQuery::Exact(ts); break;
        case 1: q = TsQuery::Newest(); break;
        case 2: q = TsQuery::Oldest(); break;
        case 3: q = TsQuery::NewestUnseen(); break;
        default: q = TsQuery::After(ts); break;
      }
      auto r = real.Get(rc, q, GetMode::kNonBlocking);
      auto [mcode, mts, mvalue] = model.Get(mc, q);
      ASSERT_EQ(r.status().code(), mcode)
          << "get " << q.ToString() << " step " << step;
      if (r.ok()) {
        EXPECT_EQ(r->ts, mts) << "step " << step;
        EXPECT_EQ(*r->payload.As<int>(), mvalue) << "step " << step;
      }
    } else if (op < 90) {  // consume
      Status s = real.Consume(rc, ts);
      StatusCode m = model.Consume(mc, ts);
      ASSERT_EQ(s.code(), m) << "consume step " << step;
    } else if (op < 94 && real_conns.size() < 6) {  // attach
      attach(rng.NextBelow(2) ? ConnDir::kInput : ConnDir::kOutput);
    } else if (op < 97 && real_conns.size() > 2) {  // detach
      real.Detach(rc);
      model.Detach(mc);
    }

    // Observable state agrees after every step.
    ASSERT_EQ(real.Occupancy(), model.Occupancy()) << "step " << step;
    ASSERT_EQ(real.GcFrontier().has_value(),
              model.GcFrontier().has_value())
        << "step " << step;
    if (real.GcFrontier()) {
      ASSERT_EQ(*real.GcFrontier(), *model.GcFrontier())
          << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StmModelProperty,
                         ::testing::Combine(::testing::Range(0, 16),
                                            ::testing::Bool()));

}  // namespace
}  // namespace ss::stm
