// Steady-state allocation audit for the pooled payload path.
//
// The PR 5 data-plane claim is concrete: once warmed up, a frame loop that
// produces payloads through the channel's PayloadPool, gets them, and
// consumes them performs ZERO heap allocations — the ring store is
// preallocated, reclaim releases buffers back to the pool, and the pool
// recycles both payload buffers and shared_ptr control blocks. This test
// replaces the global operator new with a counting version and asserts the
// count does not move across 1000 steady-state frames.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "stm/channel.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ss::stm {
namespace {

/// A stand-in for one digitized frame's worth of payload.
struct Frame {
  std::array<std::uint8_t, 256> bytes{};
  Timestamp ts = kNoTimestamp;
};

TEST(StmPoolTest, PooledSteadyStateAllocatesNothing) {
  Channel ch(ChannelId(0), "pooled",
             ChannelOptions{8, StorageMode::kRing});
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);

  auto run_frame = [&](Timestamp t) {
    Frame f;
    f.ts = t;
    ASSERT_TRUE(
        ch.PutValuePooled<Frame>(out, t, f, PutMode::kNonBlocking).ok());
    auto item = ch.Get(in, TsQuery::Exact(t), GetMode::kNonBlocking);
    ASSERT_TRUE(item.ok());
    ASSERT_EQ(item->payload.As<Frame>()->ts, t);
    ASSERT_TRUE(ch.Consume(in, t).ok());
  };

  // Warm-up: populates the pool's free lists (payload buffers and
  // shared_ptr control blocks) and grows its internal vectors to their
  // steady-state footprint.
  for (Timestamp t = 0; t < 32; ++t) run_frame(t);

  const std::uint64_t before = g_heap_allocations.load();
  for (Timestamp t = 32; t < 1032; ++t) run_frame(t);
  const std::uint64_t after = g_heap_allocations.load();

  EXPECT_EQ(after - before, 0u)
      << "pooled steady-state frames must not touch the heap";
  EXPECT_GT(ch.pool().stats().reuses, 0u);
}

TEST(StmPoolTest, UnpooledPathStillAllocates) {
  // Control: the same loop through Payload::Make does hit the heap, so the
  // zero above is evidence of pooling, not of a broken counter.
  Channel ch(ChannelId(0), "unpooled",
             ChannelOptions{8, StorageMode::kRing});
  ConnId out = ch.Attach(ConnDir::kOutput);
  ConnId in = ch.Attach(ConnDir::kInput);
  const std::uint64_t before = g_heap_allocations.load();
  for (Timestamp t = 0; t < 100; ++t) {
    Frame f;
    f.ts = t;
    ASSERT_TRUE(ch.PutValue<Frame>(out, t, f, PutMode::kNonBlocking).ok());
    ASSERT_TRUE(ch.Get(in, TsQuery::Exact(t), GetMode::kNonBlocking).ok());
    ASSERT_TRUE(ch.Consume(in, t).ok());
  }
  EXPECT_GT(g_heap_allocations.load() - before, 0u);
}

}  // namespace
}  // namespace ss::stm
