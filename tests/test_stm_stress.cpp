// Randomized MPMC stress sweep for the STM channel, run under TSan in CI.
//
// Several producers, consumers, and an attach/detach chaos thread hammer one
// channel while a sampler repeatedly snapshots Stats() and asserts the
// cross-counter invariant that must hold at every locked instant:
//
//   puts == reclaimed + dropped + occupancy
//
// The sweep runs over both storage modes (map and ring) and over bounded and
// unbounded capacities, so data races in either backend, in the cached
// min-frontier bookkeeping, or in the waiter-count wakeup discipline surface
// as TSan reports or invariant violations.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "stm/channel.hpp"

namespace ss::stm {
namespace {

struct StressCase {
  const char* name;
  StorageMode storage;
  std::size_t capacity;
};

class StmStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(StmStress, InvariantHoldsUnderRandomizedTraffic) {
  const StressCase& c = GetParam();
  Channel ch(ChannelId(0), std::string("stress-") + c.name,
             ChannelOptions{c.capacity, c.storage});

  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPutsPerProducer = 2000;
  std::atomic<Timestamp> next_ts{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;

  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(static_cast<std::uint64_t>(p) * 7919 + 1);
      ConnId out = ch.Attach(ConnDir::kOutput);
      for (int i = 0; i < kPutsPerProducer; ++i) {
        const Timestamp ts = next_ts.fetch_add(1);
        // Only deadline-free modes, so the test cannot stall: drops and
        // WouldBlock failures are part of the traffic being stressed.
        const PutMode mode = rng.NextBelow(2) ? PutMode::kDropOldest
                                              : PutMode::kNonBlocking;
        if (rng.NextBelow(4) == 0) {
          (void)ch.PutBatch(
              out, {Item{ts, Payload::Make<int>(i)}}, mode);
        } else if (rng.NextBelow(2) == 0) {
          (void)ch.PutValuePooled<int>(out, ts, i, mode);
        } else {
          (void)ch.Put(out, ts, Payload::Make<int>(i), mode);
        }
      }
      ch.Detach(out);
    });
  }

  for (int k = 0; k < kConsumers; ++k) {
    threads.emplace_back([&, k] {
      Rng rng(static_cast<std::uint64_t>(k) * 104729 + 5);
      ConnId in = ch.Attach(ConnDir::kInput);
      Timestamp seen = kNoTimestamp;
      while (!stop.load(std::memory_order_relaxed)) {
        TsQuery q;
        switch (rng.NextBelow(5)) {
          case 0: q = TsQuery::Newest(); break;
          case 1: q = TsQuery::Oldest(); break;
          case 2: q = TsQuery::NewestUnseen(); break;
          case 3: q = TsQuery::After(seen); break;
          default:
            q = TsQuery::Exact(static_cast<Timestamp>(
                rng.NextBelow(static_cast<std::uint64_t>(
                    next_ts.load() + 1))));
            break;
        }
        Expected<Item> item = rng.NextBelow(8) == 0
                                  ? ch.GetFor(in, q, /*timeout=*/500)
                                  : ch.Get(in, q, GetMode::kNonBlocking);
        if (item.ok()) seen = std::max(seen, item->ts);
        if (rng.NextBelow(4) == 0 && seen != kNoTimestamp) {
          (void)ch.Consume(in, seen - 8);
        }
      }
      // Unpin GC before the final drain check.
      (void)ch.Consume(in, next_ts.load());
      ch.Detach(in);
    });
  }

  // Chaos: attach and detach connections of both directions so conns_
  // reallocates while getters are blocked and frontiers come and go.
  threads.emplace_back([&] {
    Rng rng(424243);
    while (!stop.load(std::memory_order_relaxed)) {
      ConnId extra = ch.Attach(rng.NextBelow(2) ? ConnDir::kInput
                                                : ConnDir::kOutput);
      std::this_thread::yield();
      ch.Detach(extra);
    }
  });

  // Sampler: the coherent-snapshot invariant must hold on every sample.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ChannelStats s = ch.Stats();
      ASSERT_EQ(s.puts, s.reclaimed + s.dropped + s.occupancy);
      if (c.capacity != 0) ASSERT_LE(s.occupancy, c.capacity);
      ASSERT_LE(s.occupancy, s.max_occupancy);
      std::this_thread::yield();
    }
  });

  // Producers finish on their own; everyone else runs until stopped.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)]
      .join();
  stop.store(true);
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  ch.Shutdown();

  const ChannelStats s = ch.Stats();
  EXPECT_EQ(s.puts, s.reclaimed + s.dropped + s.occupancy);
  if (c.capacity != 0) EXPECT_LE(s.max_occupancy, c.capacity);
  EXPECT_GT(s.puts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StmStress,
    ::testing::Values(StressCase{"map_unbounded", StorageMode::kMap, 0},
                      StressCase{"map_bounded", StorageMode::kMap, 32},
                      StressCase{"ring_small", StorageMode::kRing, 8},
                      StressCase{"ring_large", StorageMode::kRing, 256}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace ss::stm
