// Tests for the synthetic problem generators.
#include <gtest/gtest.h>

#include "graph/synthetic.hpp"

namespace ss::graph {
namespace {

constexpr RegimeId kR0 = RegimeId(0);

TEST(SyntheticTest, ChainShape) {
  Rng rng(1);
  SyntheticProblem p = MakeChain(rng, 5);
  EXPECT_TRUE(p.graph.Validate().ok());
  EXPECT_EQ(p.graph.task_count(), 5u);
  EXPECT_EQ(p.graph.channel_count(), 4u);
  EXPECT_EQ(p.graph.SourceTasks().size(), 1u);
  EXPECT_EQ(p.graph.SinkTasks().size(), 1u);
  EXPECT_TRUE(p.costs.Validate(p.graph.task_count()).ok());
  EXPECT_EQ(p.family, "chain");
}

TEST(SyntheticTest, ForkJoinShape) {
  Rng rng(2);
  SyntheticProblem p = MakeForkJoin(rng, 4);
  EXPECT_TRUE(p.graph.Validate().ok());
  EXPECT_EQ(p.graph.task_count(), 6u);  // src + 4 branches + sink
  TaskId src = p.graph.FindTask("src");
  EXPECT_EQ(p.graph.Successors(src).size(), 4u);
  TaskId sink = p.graph.FindTask("sink");
  EXPECT_EQ(p.graph.Predecessors(sink).size(), 4u);
  EXPECT_TRUE(p.costs.Validate(p.graph.task_count()).ok());
}

TEST(SyntheticTest, LayeredValidatesAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(seed);
    SyntheticOptions opts;
    opts.layers = 2 + static_cast<int>(seed % 3);
    SyntheticProblem p = MakeLayered(rng, opts);
    ASSERT_TRUE(p.graph.Validate().ok()) << "seed " << seed;
    ASSERT_TRUE(p.costs.Validate(p.graph.task_count()).ok())
        << "seed " << seed;
    EXPECT_EQ(p.graph.SourceTasks().size(), 1u) << "seed " << seed;
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  Rng a(42), b(42);
  SyntheticProblem pa = MakeLayered(a);
  SyntheticProblem pb = MakeLayered(b);
  ASSERT_EQ(pa.graph.task_count(), pb.graph.task_count());
  ASSERT_EQ(pa.graph.channel_count(), pb.graph.channel_count());
  for (std::size_t t = 0; t < pa.graph.task_count(); ++t) {
    const TaskId tid(static_cast<TaskId::underlying_type>(t));
    EXPECT_EQ(pa.costs.Get(kR0, tid).serial_cost(),
              pb.costs.Get(kR0, tid).serial_cost());
  }
}

TEST(SyntheticTest, CostsWithinConfiguredRange) {
  Rng rng(7);
  SyntheticOptions opts;
  opts.min_cost = 100;
  opts.max_cost = 200;
  opts.variant_percent = 0;
  SyntheticProblem p = MakeChain(rng, 8, opts);
  for (std::size_t t = 0; t < p.graph.task_count(); ++t) {
    const TaskId tid(static_cast<TaskId::underlying_type>(t));
    const Tick cost = p.costs.Get(kR0, tid).serial_cost();
    EXPECT_GE(cost, 100);
    EXPECT_LE(cost, 200);
    EXPECT_EQ(p.costs.Get(kR0, tid).variant_count(), 1u);
  }
}

TEST(SyntheticTest, VariantPercentRespected) {
  Rng rng(9);
  SyntheticOptions opts;
  opts.variant_percent = 100;
  SyntheticProblem p = MakeChain(rng, 10, opts);
  for (std::size_t t = 0; t < p.graph.task_count(); ++t) {
    const TaskId tid(static_cast<TaskId::underlying_type>(t));
    EXPECT_GE(p.costs.Get(kR0, tid).variant_count(), 2u) << t;
  }
}

}  // namespace
}  // namespace ss::graph
