// Tests for the multi-tenant front end: the streaming latency histogram,
// token-bucket admission, tenant registry + config parsing, the weighted
// deficit-round-robin fair scheduler (including the weighted-share
// convergence property under saturating load), and the TenantScheduler's
// typed error surface over a real ScheduleService.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/histogram.hpp"
#include "core/rng.hpp"
#include "graph/graph_io.hpp"
#include "service/schedule_service.hpp"
#include "tenant/fair_queue.hpp"
#include "tenant/tenant.hpp"
#include "tenant/tenant_service.hpp"

namespace ss::tenant {
namespace {

// ---- LatencyHistogram ----------------------------------------------------

TEST(Histogram, SmallValuesLandInUnitBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Add(7);
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 10u);
  // Values below kSub get exact unit buckets; percentiles report the
  // bucket midpoint.
  EXPECT_DOUBLE_EQ(snap.p50(), 7.5);
  EXPECT_DOUBLE_EQ(snap.p99(), 7.5);
}

TEST(Histogram, PercentilesWithinRelativeErrorBound) {
  LatencyHistogram h;
  // 1..100000 uniformly: true p50 = 50000, p99 = 99000.
  for (std::int64_t v = 1; v <= 100000; ++v) h.Add(v);
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 100000u);
  EXPECT_NEAR(snap.p50(), 50000.0, 50000.0 / LatencyHistogram::kSub);
  EXPECT_NEAR(snap.p99(), 99000.0, 99000.0 / LatencyHistogram::kSub);
}

TEST(Histogram, NegativeClampsAndEmptyIsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.TakeSnapshot().p50(), 0.0);
  h.Add(-5);
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_DOUBLE_EQ(snap.p50(), 0.5);  // midpoint of the [0,1) bucket
}

TEST(Histogram, BucketBoundsCoverInt64) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{15}, std::int64_t{16},
                         std::int64_t{1000}, std::int64_t{1} << 40,
                         std::int64_t{1} << 62}) {
    const int b = LatencyHistogram::BucketFor(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_GE(v, LatencyHistogram::BucketLow(b));
    EXPECT_LT(v, LatencyHistogram::BucketLow(b) +
                     LatencyHistogram::BucketWidth(b));
  }
}

// ---- TokenBucket ---------------------------------------------------------

TEST(TokenBucket, BurstThenRefill) {
  TokenBucket bucket(/*rate_per_sec=*/1000.0, /*burst=*/2.0, /*now=*/0);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
  // 1 ms at 1000/s refills exactly one token.
  EXPECT_TRUE(bucket.TryAcquire(ticks::FromMillis(1)));
  EXPECT_FALSE(bucket.TryAcquire(ticks::FromMillis(1)));
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket bucket(/*rate_per_sec=*/0.0, /*burst=*/1.0, /*now=*/0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
}

// ---- Tenant config parsing ----------------------------------------------

TEST(TenantConfig, ParsesWeightsRatesAndQueues) {
  auto configs = ParseTenantConfig(
      "# fleet tenants\n"
      "tenant video weight=4 rate=100 burst=8 queue=32\n"
      "\n"
      "tenant batch weight=0.5\n"
      "tenant best-effort\n");
  ASSERT_TRUE(configs.ok()) << configs.status().ToString();
  ASSERT_EQ(configs->size(), 3u);
  EXPECT_EQ((*configs)[0].name, "video");
  EXPECT_DOUBLE_EQ((*configs)[0].weight, 4.0);
  EXPECT_DOUBLE_EQ((*configs)[0].rate_per_sec, 100.0);
  EXPECT_DOUBLE_EQ((*configs)[0].burst, 8.0);
  EXPECT_EQ((*configs)[0].queue_capacity, 32u);
  EXPECT_DOUBLE_EQ((*configs)[1].weight, 0.5);
  EXPECT_DOUBLE_EQ((*configs)[2].weight, 1.0);
}

TEST(TenantConfig, RejectsUnknownKeysWithLineNumber) {
  auto configs = ParseTenantConfig("tenant a\ntenant b speed=9\n");
  ASSERT_FALSE(configs.ok());
  EXPECT_EQ(configs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(configs.status().message().find("line 2"), std::string::npos)
      << configs.status().ToString();
}

TEST(TenantConfig, RejectsDuplicateAndMalformed) {
  EXPECT_FALSE(ParseTenantConfig("tenant a\ntenant a\n").ok());
  EXPECT_FALSE(ParseTenantConfig("tenant a weight=heavy\n").ok());
  EXPECT_FALSE(ParseTenantConfig("tenant a weight=0\n").ok());
  EXPECT_FALSE(ParseTenantConfig("widget a\n").ok());
}

// ---- TenantRegistry ------------------------------------------------------

TEST(TenantRegistry, RegisterResolveAndTypedFailures) {
  RegistryOptions options;
  options.max_tenants = 2;
  TenantRegistry registry(options);

  TenantConfig a;
  a.name = "a";
  ASSERT_TRUE(registry.Register(a).ok());
  EXPECT_EQ(registry.Register(a).status().code(),
            StatusCode::kAlreadyExists);

  auto b = registry.Resolve("b");  // auto-registers
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->index, 1);

  TenantConfig c;
  c.name = "c";
  EXPECT_EQ(registry.Register(c).status().code(),
            StatusCode::kFailedPrecondition);  // registry full
  EXPECT_EQ(registry.size(), 2u);
}

TEST(TenantRegistry, ClosedRegistryRejectsUnknown) {
  RegistryOptions options;
  options.auto_register = false;
  TenantRegistry registry(options);
  EXPECT_EQ(registry.Resolve("ghost").status().code(),
            StatusCode::kNotFound);
}

// ---- FairScheduler -------------------------------------------------------

FairQueueOptions Paused() {
  FairQueueOptions options;
  options.dispatch_threads = 0;  // drain only via DispatchOne()
  return options;
}

TEST(FairScheduler, QueueFullIsTyped) {
  FairScheduler fair(Paused());
  const int lane = fair.AddTenant(1.0, /*queue_capacity=*/2);
  EXPECT_TRUE(fair.Submit(lane, [](FairOutcome) {}).ok());
  EXPECT_TRUE(fair.Submit(lane, [](FairOutcome) {}).ok());
  EXPECT_EQ(fair.Submit(lane, [](FairOutcome) {}).code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(fair.QueuedFor(lane), 2u);
  EXPECT_EQ(fair.Stats().rejected_full, 1u);
}

TEST(FairScheduler, ShutdownCancelsQueuedJobs) {
  FairScheduler fair(Paused());
  const int lane = fair.AddTenant(1.0, 8);
  int cancelled = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fair.Submit(lane, [&](FairOutcome o) {
                       cancelled += o == FairOutcome::kCancelled;
                     }).ok());
  }
  fair.Shutdown();
  EXPECT_EQ(cancelled, 3);
  EXPECT_EQ(fair.Submit(lane, [](FairOutcome) {}).code(),
            StatusCode::kCancelled);
}

TEST(FairScheduler, ExpiredFrontDrainsWithoutChargingDeficit) {
  FairScheduler fair(Paused());
  const int lane = fair.AddTenant(1.0, 8);
  int expired = 0;
  int dispatched = 0;
  const Tick past = WallNow() - ticks::FromMillis(5);
  ASSERT_TRUE(fair.Submit(lane,
                          [&](FairOutcome o) {
                            expired += o == FairOutcome::kExpired;
                          },
                          past)
                  .ok());
  ASSERT_TRUE(fair.Submit(lane, [&](FairOutcome o) {
                     dispatched += o == FairOutcome::kDispatched;
                   }).ok());
  // One pass pops the expired front (completing it with kExpired) and then
  // dispatches the live job behind it.
  EXPECT_TRUE(fair.DispatchOne());
  EXPECT_EQ(expired, 1);
  EXPECT_EQ(dispatched, 1);
  const auto stats = fair.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.dispatched, 1u);
  EXPECT_EQ(fair.QueuedFor(lane), 0u);
  fair.Shutdown();
}

TEST(FairScheduler, FullyExpiredLaneDrainsWithoutDispatch) {
  FairScheduler fair(Paused());
  const int lane = fair.AddTenant(1.0, 8);
  int expired = 0;
  const Tick past = WallNow() - ticks::FromMillis(5);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fair.Submit(lane,
                            [&](FairOutcome o) {
                              expired += o == FairOutcome::kExpired;
                            },
                            past)
                    .ok());
  }
  // Nothing dispatchable remains, but the scan still completes the
  // expired jobs (exactly once each).
  EXPECT_FALSE(fair.DispatchOne());
  EXPECT_EQ(expired, 3);
  EXPECT_EQ(fair.Stats().expired, 3u);
  EXPECT_EQ(fair.Stats().dispatched, 0u);
  EXPECT_EQ(fair.QueuedFor(lane), 0u);
  fair.Shutdown();
}

TEST(FairScheduler, FutureDeadlineIsDispatchedNormally) {
  FairScheduler fair(Paused());
  const int lane = fair.AddTenant(1.0, 8);
  int dispatched = 0;
  ASSERT_TRUE(fair.Submit(lane,
                          [&](FairOutcome o) {
                            dispatched += o == FairOutcome::kDispatched;
                          },
                          WallNow() + ticks::FromSeconds(60))
                  .ok());
  EXPECT_TRUE(fair.DispatchOne());
  EXPECT_EQ(dispatched, 1);
  EXPECT_EQ(fair.Stats().expired, 0u);
  fair.Shutdown();
}

/// Weighted-share convergence property: under saturating load (every lane
/// topped up after each dispatch), tenant i's share of dispatches converges
/// to weight_i / sum(weights) well within 20%, and nobody starves.
TEST(FairScheduler, WeightedSharesConvergeUnderSaturation) {
  const std::vector<double> weights = {4.0, 2.0, 1.0, 1.0, 0.5};
  const double weight_sum = 8.5;
  FairScheduler fair(Paused());
  std::vector<int> lanes;
  std::vector<int> dispatched(weights.size(), 0);
  for (double w : weights) lanes.push_back(fair.AddTenant(w, 4));

  auto top_up = [&] {
    for (std::size_t t = 0; t < lanes.size(); ++t) {
      while (fair.QueuedFor(lanes[t]) < 4) {
        ASSERT_TRUE(
            fair.Submit(lanes[t], [&dispatched, t](FairOutcome o) {
              if (o == FairOutcome::kDispatched) ++dispatched[t];
            }).ok());
      }
    }
  };

  const int kRounds = 1700;
  for (int i = 0; i < kRounds; ++i) {
    top_up();
    ASSERT_TRUE(fair.DispatchOne());
  }

  int total = 0;
  for (int d : dispatched) total += d;
  ASSERT_EQ(total, kRounds);
  for (std::size_t t = 0; t < weights.size(); ++t) {
    const double expected = weights[t] / weight_sum;
    const double achieved = static_cast<double>(dispatched[t]) / total;
    EXPECT_GT(dispatched[t], 0) << "tenant " << t << " starved";
    EXPECT_LT(std::abs(achieved - expected) / expected, 0.20)
        << "tenant " << t << ": achieved " << achieved << ", expected "
        << expected;
  }
  fair.Shutdown();
}

/// An idle lane forfeits credit: a tenant that was idle for many rounds
/// does not burst past its steady-state share when it comes back.
TEST(FairScheduler, IdleLaneForfeitsDeficit) {
  FairScheduler fair(Paused());
  const int busy = fair.AddTenant(1.0, 64);
  const int idle = fair.AddTenant(1.0, 64);
  int busy_count = 0;
  int idle_count = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fair.Submit(busy, [&](FairOutcome) { ++busy_count; }).ok());
  }
  // idle's lane stays empty for 20 dispatches -> no credit accrues.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(fair.DispatchOne());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fair.Submit(idle, [&](FairOutcome) { ++idle_count; }).ok());
  }
  // Next two dispatches: one each (round-robin), not an idle burst.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(fair.DispatchOne());
  EXPECT_EQ(idle_count, 5);
  EXPECT_EQ(busy_count, 25);
  fair.Shutdown();
}

// ---- TenantScheduler over a real service ---------------------------------

std::shared_ptr<graph::ProblemSpec> SmallProblem(int salt) {
  auto spec = std::make_shared<graph::ProblemSpec>();
  const TaskId src = spec->graph.AddTask("src", /*is_source=*/true);
  const TaskId sink = spec->graph.AddTask("sink");
  const ChannelId a = spec->graph.AddChannel("a", 64);
  spec->graph.SetProducer(src, a);
  spec->graph.AddConsumer(sink, a);
  spec->costs.Set(RegimeId(0), src, graph::TaskCost::Serial(100 + salt));
  spec->costs.Set(RegimeId(0), sink, graph::TaskCost::Serial(60));
  spec->machine = graph::MachineConfig::SingleNode(2);
  spec->comm = graph::CommModel::Free();
  spec->regime_count = 1;
  return spec;
}

service::SolveRequest RequestFor(std::shared_ptr<graph::ProblemSpec> spec) {
  service::SolveRequest request;
  request.problem = std::move(spec);
  request.regime = RegimeId(0);
  return request;
}

TEST(TenantScheduler, SolvesAndServesCacheHitsInline) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.dispatch_threads = 1;
  TenantScheduler tenants(&service, options);

  std::promise<bool> first_hit;
  ASSERT_TRUE(tenants
                  .SubmitSolve("alice", RequestFor(SmallProblem(1)),
                               [&](Expected<service::SolveResult> result,
                                   bool cache_hit) {
                                 ASSERT_TRUE(result.ok());
                                 first_hit.set_value(cache_hit);
                               })
                  .ok());
  EXPECT_FALSE(first_hit.get_future().get());  // cold: went via the solver

  // Same problem again: admission-time cache probe answers inline.
  bool second_hit = false;
  bool invoked = false;
  ASSERT_TRUE(tenants
                  .SubmitSolve("alice", RequestFor(SmallProblem(1)),
                               [&](Expected<service::SolveResult> result,
                                   bool cache_hit) {
                                 EXPECT_TRUE(result.ok());
                                 second_hit = cache_hit;
                                 invoked = true;
                               })
                  .ok());
  EXPECT_TRUE(invoked);  // inline, no dispatch round-trip
  EXPECT_TRUE(second_hit);

  const auto stats = tenants.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "alice");
  EXPECT_EQ(stats[0].admitted, 2u);
  EXPECT_EQ(stats[0].dispatched, 1u);
  EXPECT_EQ(stats[0].cache_hits, 1u);
  EXPECT_EQ(stats[0].completed, 2u);
  tenants.Shutdown();
}

TEST(TenantScheduler, AdmissionRejectionIsTypedAndSkipsCallback) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.dispatch_threads = 0;
  options.registry.default_config.rate_per_sec = 0.0001;  // ~1 per 3 hours
  options.registry.default_config.burst = 1.0;
  TenantScheduler tenants(&service, options);

  ASSERT_TRUE(tenants
                  .SubmitSolve("bob", RequestFor(SmallProblem(2)),
                               [](Expected<service::SolveResult>, bool) {})
                  .ok());
  bool invoked = false;
  Status second = tenants.SubmitSolve(
      "bob", RequestFor(SmallProblem(3)),
      [&](Expected<service::SolveResult>, bool) { invoked = true; });
  EXPECT_EQ(second.code(), StatusCode::kAdmissionRejected);
  EXPECT_FALSE(invoked);
  EXPECT_EQ(tenants.Stats()[0].rejected_rate_limited, 1u);
  tenants.Shutdown();
}

TEST(TenantScheduler, PerTenantQueueFullIsTyped) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.dispatch_threads = 0;  // nothing drains the lanes
  options.registry.default_config.queue_capacity = 1;
  TenantScheduler tenants(&service, options);

  ASSERT_TRUE(tenants
                  .SubmitSolve("carol", RequestFor(SmallProblem(4)),
                               [](Expected<service::SolveResult>, bool) {})
                  .ok());
  Status second = tenants.SubmitSolve(
      "carol", RequestFor(SmallProblem(5)),
      [](Expected<service::SolveResult>, bool) {});
  EXPECT_EQ(second.code(), StatusCode::kWouldBlock);
  EXPECT_EQ(tenants.Stats()[0].rejected_queue_full, 1u);

  // Another tenant's lane is unaffected (per-tenant backpressure).
  EXPECT_TRUE(tenants
                  .SubmitSolve("dave", RequestFor(SmallProblem(6)),
                               [](Expected<service::SolveResult>, bool) {})
                  .ok());
  tenants.Shutdown();
}

TEST(TenantScheduler, QueuedPastDeadlineExpiresTyped) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.dispatch_threads = 1;
  TenantScheduler tenants(&service, options);

  // A deadline already in the past cannot be dispatched: the lane scan
  // completes it with kDeadlineExceeded before it ever reaches the solver.
  auto request = RequestFor(SmallProblem(40));
  request.deadline = WallNow() - ticks::FromMillis(1);
  std::promise<Status> done;
  ASSERT_TRUE(tenants
                  .SubmitSolve("erin", request,
                               [&](Expected<service::SolveResult> result,
                                   bool) {
                                 done.set_value(result.status());
                               })
                  .ok());
  EXPECT_EQ(done.get_future().get().code(), StatusCode::kDeadlineExceeded);
  tenants.Shutdown();
  const auto stats = tenants.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].expired_in_queue, 1u);
  EXPECT_EQ(tenants.QueueStats().expired, 1u);
}

TEST(TenantScheduler, UnknownTenantWhenRegistryClosed) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.registry.auto_register = false;
  TenantScheduler tenants(&service, options);
  Status submit = tenants.SubmitSolve(
      "ghost", RequestFor(SmallProblem(7)),
      [](Expected<service::SolveResult>, bool) {});
  EXPECT_EQ(submit.code(), StatusCode::kNotFound);
  EXPECT_EQ(tenants.TouchTenant("ghost").code(), StatusCode::kNotFound);
  tenants.Shutdown();
}

TEST(TenantScheduler, ShutdownCancelsQueuedWork) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.dispatch_threads = 0;
  TenantScheduler tenants(&service, options);
  Status cancelled_status = OkStatus();
  ASSERT_TRUE(tenants
                  .SubmitSolve("erin", RequestFor(SmallProblem(8)),
                               [&](Expected<service::SolveResult> result,
                                   bool) {
                                 cancelled_status = result.status();
                               })
                  .ok());
  tenants.Shutdown();
  EXPECT_EQ(cancelled_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(tenants.Stats()[0].cancelled, 1u);
}

TEST(TenantScheduler, LookupNeverConsumesTokens) {
  service::ScheduleService service{service::ServiceOptions{}};
  TenantSchedulerOptions options;
  options.dispatch_threads = 1;
  options.registry.default_config.rate_per_sec = 0.0001;
  options.registry.default_config.burst = 1.0;
  TenantScheduler tenants(&service, options);

  // Lookups miss (kNotFound) but never trip the rate limit.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tenants.Lookup("frank", RequestFor(SmallProblem(9)))
                  .status()
                  .code(),
              StatusCode::kNotFound);
  }
  // The single burst token is still available for a real solve.
  std::promise<void> done;
  ASSERT_TRUE(tenants
                  .SubmitSolve("frank", RequestFor(SmallProblem(9)),
                               [&](Expected<service::SolveResult> result,
                                   bool) {
                                 EXPECT_TRUE(result.ok());
                                 done.set_value();
                               })
                  .ok());
  done.get_future().wait();
  auto hit = tenants.Lookup("frank", RequestFor(SmallProblem(9)));
  EXPECT_TRUE(hit.ok());
  tenants.Shutdown();
}

}  // namespace
}  // namespace ss::tenant
