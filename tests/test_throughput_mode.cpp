// Tests for the throughput-bounded scheduling mode: max throughput subject
// to latency <= bound.
#include <gtest/gtest.h>

#include "regime/regime.hpp"
#include "sched/optimal.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::sched {
namespace {

using graph::CommModel;
using graph::CostModel;
using graph::MachineConfig;
using graph::TaskCost;
using graph::TaskGraph;

constexpr RegimeId kR0 = RegimeId(0);

class ThroughputModeFixture : public ::testing::Test {
 protected:
  ThroughputModeFixture() : tg_(tracker::BuildTrackerGraph()) {
    regime::RegimeSpace space(8, 8);
    tracker::PaperCostParams pcp;
    pcp.scale = 0.001;
    costs_ = tracker::PaperCostModel(tg_, space, pcp);
    scheduler_ = std::make_unique<OptimalScheduler>(
        tg_.graph, costs_, CommModel(), MachineConfig::SingleNode(4));
  }

  tracker::TrackerGraph tg_;
  CostModel costs_;
  std::unique_ptr<OptimalScheduler> scheduler_;
};

TEST_F(ThroughputModeFixture, TightBoundReducesToMinLatency) {
  auto min_lat = scheduler_->Schedule(kR0);
  ASSERT_TRUE(min_lat.ok());
  auto bounded = scheduler_->ScheduleForThroughput(kR0, min_lat->min_latency);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->min_latency, min_lat->min_latency);
  EXPECT_LE(bounded->best.Latency(), min_lat->min_latency);
  // At the tight bound, throughput cannot beat the Fig. 6 result by much
  // (they search the same feasible set).
  EXPECT_EQ(bounded->best.initiation_interval,
            min_lat->best.initiation_interval);
}

TEST_F(ThroughputModeFixture, LooserBoundNeverReducesThroughput) {
  auto min_lat = scheduler_->Schedule(kR0);
  ASSERT_TRUE(min_lat.ok());
  auto tight = scheduler_->ScheduleForThroughput(kR0, min_lat->min_latency);
  ASSERT_TRUE(tight.ok());
  auto loose = scheduler_->ScheduleForThroughput(
      kR0, min_lat->min_latency * 3 / 2);
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(loose->best.initiation_interval,
            tight->best.initiation_interval);
  // The loose schedule still honours its bound.
  EXPECT_LE(loose->best.Latency(), min_lat->min_latency * 3 / 2);
}

TEST_F(ThroughputModeFixture, InfeasibleBoundFails) {
  auto result = scheduler_->ScheduleForThroughput(kR0, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ThroughputModeFixture, InvalidBoundRejected) {
  auto result = scheduler_->ScheduleForThroughput(kR0, 0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ThroughputModeTest, TradeoffVisibleOnSimpleGraph) {
  // src(10) -> a(100): min latency 110 needs a started right after src; the
  // pipelined II is limited by a's processor span. A looser bound allows
  // ... the same here, but on one processor the naive layout II equals the
  // full 110 regardless; verify monotonicity only.
  TaskGraph g;
  CostModel costs;
  TaskId src = g.AddTask("src", true);
  TaskId a = g.AddTask("a");
  ChannelId c = g.AddChannel("c", 0);
  g.SetProducer(src, c);
  g.AddConsumer(a, c);
  costs.Set(kR0, src, TaskCost::Serial(10));
  costs.Set(kR0, a, TaskCost::Serial(100));

  OptimalScheduler sched(g, costs, CommModel::Free(),
                         MachineConfig::SingleNode(2));
  auto tight = sched.ScheduleForThroughput(kR0, 110);
  ASSERT_TRUE(tight.ok());
  auto loose = sched.ScheduleForThroughput(kR0, 300);
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(loose->best.initiation_interval,
            tight->best.initiation_interval);
  EXPECT_LE(tight->best.Latency(), 110);
  EXPECT_LE(loose->best.Latency(), 300);
}

}  // namespace
}  // namespace ss::sched
