// Tests for the task-timing collector and cost-drift detection.
#include <gtest/gtest.h>

#include "runtime/free_runner.hpp"
#include "runtime/timing.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

namespace ss::runtime {
namespace {

constexpr RegimeId kR0 = RegimeId(0);

TEST(TimingCollectorTest, RecordsPerKind) {
  TaskTimingCollector collector(2);
  collector.Record(TaskId(0), TaskTimingCollector::Kind::kSerial, 100);
  collector.Record(TaskId(0), TaskTimingCollector::Kind::kSerial, 200);
  collector.Record(TaskId(0), TaskTimingCollector::Kind::kChunk, 50);
  collector.Record(TaskId(1), TaskTimingCollector::Kind::kJoin, 10);

  EXPECT_EQ(collector.SerialStats(TaskId(0)).count(), 2u);
  EXPECT_DOUBLE_EQ(collector.SerialStats(TaskId(0)).mean(), 150.0);
  EXPECT_EQ(collector.SampleCount(TaskId(0)), 3u);
  EXPECT_EQ(collector.SampleCount(TaskId(1)), 1u);
  // Out-of-range task ids are ignored, not fatal.
  collector.Record(TaskId(9), TaskTimingCollector::Kind::kSerial, 1);
}

TEST(TimingCollectorTest, DriftDetection) {
  graph::TaskGraph g;
  TaskId a = g.AddTask("a", true);
  TaskId b = g.AddTask("b");
  ChannelId c = g.AddChannel("c", 0);
  g.SetProducer(a, c);
  g.AddConsumer(b, c);
  graph::CostModel costs;
  costs.Set(kR0, a, graph::TaskCost::Serial(100));
  costs.Set(kR0, b, graph::TaskCost::Serial(100));

  TaskTimingCollector collector(2);
  // Task a behaves; task b takes 5x its modelled cost.
  for (int i = 0; i < 10; ++i) {
    collector.Record(a, TaskTimingCollector::Kind::kSerial, 95 + i);
    collector.Record(b, TaskTimingCollector::Kind::kSerial, 500);
  }
  auto drifted = collector.CompareTo(costs, kR0, /*tolerance=*/0.5);
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_EQ(drifted[0].task, b);
  EXPECT_NEAR(drifted[0].ratio, 5.0, 0.01);
  EXPECT_EQ(drifted[0].expected, 100);

  // Faster-than-modelled drifts are flagged too.
  TaskTimingCollector fast(2);
  for (int i = 0; i < 5; ++i) {
    fast.Record(a, TaskTimingCollector::Kind::kSerial, 10);
  }
  auto fast_drift = fast.CompareTo(costs, kR0, 0.5);
  ASSERT_EQ(fast_drift.size(), 1u);
  EXPECT_LT(fast_drift[0].ratio, 1.0);

  // Report mentions every task.
  std::string report = collector.Report(g);
  EXPECT_NE(report.find("a:"), std::string::npos);
  EXPECT_NE(report.find("b:"), std::string::npos);
}

TEST(TimingCollectorTest, FreeRunnerFeedsCollector) {
  tracker::TrackerParams params;
  params.width = 64;
  params.height = 48;
  params.target_size = 10;
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph(params);
  Application app(tg.graph);
  tracker::InstallTrackerBodies(tg, params, [](Timestamp) { return 1; }, 4,
                                &app);
  ASSERT_TRUE(app.Materialize().ok());

  TaskTimingCollector collector(tg.graph.task_count());
  FreeRunOptions opts;
  opts.frames = 6;
  opts.timing = &collector;
  FreeRunner runner(app, opts);
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());

  // Every task processed every completed frame (digitizer all attempts).
  EXPECT_EQ(collector.SerialStats(tg.digitizer).count(), 6u);
  EXPECT_EQ(collector.SerialStats(tg.target_detection).count(),
            result->metrics.frames_completed);
  // CompareTo runs cleanly against a freshly measured model. Exact drift
  // emptiness is not asserted: under full-suite load on a single-core host,
  // wall times legitimately inflate by large factors, which is precisely
  // the condition the collector exists to surface (the calibrated check of
  // detection behaviour lives in TimingCollectorTest.DriftDetection).
  regime::RegimeSpace space(1, 1);
  tracker::MeasureOptions mo;
  mo.repetitions = 3;
  mo.fp_options = {1};
  graph::CostModel measured =
      tracker::MeasureCostModel(tg, space, params, mo);
  auto drifted = collector.CompareTo(measured, kR0, /*tolerance=*/9.0);
  for (const auto& d : drifted) {
    EXPECT_GT(d.expected, 0);
    EXPECT_GT(d.ratio, 0.0);
  }
  EXPECT_FALSE(collector.Report(tg.graph).empty());
}

}  // namespace
}  // namespace ss::runtime
