// Tests for the color tracker: kernels (histogram, change detection,
// back-projection, peak finding), bodies (serial vs chunked equivalence,
// detection correctness on planted targets), and cost models.
#include <gtest/gtest.h>

#include <cmath>

#include "regime/regime.hpp"
#include "tracker/bodies.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"
#include "tracker/kernels.hpp"

namespace ss::tracker {
namespace {

TrackerParams SmallParams() {
  TrackerParams p;
  p.width = 96;
  p.height = 72;
  p.target_size = 12;
  return p;
}

// ---- kernels -------------------------------------------------------------------

TEST(KernelsTest, SynthesizedFrameDeterministic) {
  TrackerParams p = SmallParams();
  Frame a = SynthesizeFrame(p, 3, 2);
  Frame b = SynthesizeFrame(p, 3, 2);
  EXPECT_EQ(a.pixels, b.pixels);
  Frame c = SynthesizeFrame(p, 4, 2);
  EXPECT_NE(a.pixels, c.pixels);
}

TEST(KernelsTest, HistogramNormalized) {
  TrackerParams p = SmallParams();
  Frame f = SynthesizeFrame(p, 0, 1);
  FrameHistogram h = ComputeHistogram(f);
  float sum = 0;
  for (float v : h.hist) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(KernelsTest, ChangeDetectFirstFrameAllMoving) {
  TrackerParams p = SmallParams();
  Frame f = SynthesizeFrame(p, 0, 1);
  MotionMask m = ChangeDetect(f, nullptr);
  EXPECT_EQ(m.CountActive(), f.PixelCount());
}

TEST(KernelsTest, ChangeDetectIdenticalFramesStill) {
  TrackerParams p = SmallParams();
  Frame f = SynthesizeFrame(p, 0, 1);
  MotionMask m = ChangeDetect(f, &f);
  EXPECT_EQ(m.CountActive(), 0u);
}

TEST(KernelsTest, ChangeDetectMovingTargetFlagged) {
  TrackerParams p = SmallParams();
  Frame prev = SynthesizeFrame(p, 0, 1);
  Frame cur = SynthesizeFrame(p, 5, 1);  // target has moved
  MotionMask m = ChangeDetect(cur, &prev);
  EXPECT_GT(m.CountActive(), 0u);
  EXPECT_LT(m.CountActive(), cur.PixelCount());
}

TEST(KernelsTest, ModelColorsDistinct) {
  std::uint8_t r1, g1, b1, r2, g2, b2;
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      ModelColor(a, &r1, &g1, &b1);
      ModelColor(b, &r2, &g2, &b2);
      const int dist = std::abs(r1 - r2) + std::abs(g1 - g2) +
                       std::abs(b1 - b2);
      EXPECT_GT(dist, 48) << "models " << a << " and " << b;
    }
  }
}

TEST(KernelsTest, BackprojectionPeaksAtPlantedTarget) {
  TrackerParams p = SmallParams();
  const int models = 3;
  ModelSet set = MakeModelSet(p, models);
  Frame f = SynthesizeFrame(p, 7, models);
  FrameHistogram fh = ComputeHistogram(f);
  MotionMask mask = ChangeDetect(f, nullptr);

  for (int m = 0; m < models; ++m) {
    Histogram ratio = PrepareRatioHistogram(set.models[m].hist, fh.hist,
                                            p.prep_passes);
    std::vector<float> map(f.PixelCount());
    Backproject(f, mask, ratio, 0, f.height, p.pixel_work, map.data());
    Detection det = FindPeak(map, f.width, f.height, m);
    TargetPose pose = PlantedPose(p, m, 7);
    EXPECT_NEAR(det.x, pose.x, p.target_size) << "model " << m;
    EXPECT_NEAR(det.y, pose.y, p.target_size) << "model " << m;
  }
}

TEST(KernelsTest, RatioHistogramSmoothingPreservesScale) {
  TrackerParams p = SmallParams();
  ModelSet set = MakeModelSet(p, 1);
  Frame f = SynthesizeFrame(p, 0, 1);
  FrameHistogram fh = ComputeHistogram(f);
  Histogram raw = PrepareRatioHistogram(set.models[0].hist, fh.hist, 0);
  Histogram smooth = PrepareRatioHistogram(set.models[0].hist, fh.hist, 10);
  float raw_max = 0, smooth_max = 0;
  for (int i = 0; i < kHistSize; ++i) {
    raw_max = std::max(raw_max, raw[static_cast<std::size_t>(i)]);
    smooth_max = std::max(smooth_max, smooth[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(smooth_max, 0.f);
  EXPECT_LE(smooth_max, raw_max + 1e-3f);
}

// ---- bodies --------------------------------------------------------------------

class BodyFixture : public ::testing::Test {
 protected:
  BodyFixture()
      : params_(SmallParams()),
        enrolled_(std::make_shared<const ModelSet>(
            MakeModelSet(params_, 8))) {}

  runtime::TaskInputs MakeT4Inputs(Timestamp ts, int models) {
    Frame f = SynthesizeFrame(params_, ts, models);
    f.num_targets = models;
    FrameHistogram fh = ComputeHistogram(f);
    MotionMask mask = ChangeDetect(f, nullptr);
    runtime::TaskInputs in;
    in.ts = ts;
    in.items = {
        stm::Item{ts, stm::Payload::Make<Frame>(std::move(f))},
        stm::Item{ts, stm::Payload::Make<FrameHistogram>(std::move(fh))},
        stm::Item{ts, stm::Payload::Make<MotionMask>(std::move(mask))},
    };
    return in;
  }

  TrackerParams params_;
  std::shared_ptr<const ModelSet> enrolled_;
};

TEST_F(BodyFixture, SerialProcessProducesOneMapPerModel) {
  TargetDetectionBody body(params_, enrolled_);
  auto in = MakeT4Inputs(0, 5);
  runtime::TaskOutputs out;
  ASSERT_TRUE(body.Process(in, &out).ok());
  auto bp = out.items.at(0).As<BackProjectionSet>();
  EXPECT_EQ(bp->maps.size(), 5u);
  EXPECT_EQ(bp->model_ids.size(), 5u);
}

// Chunked execution must be bit-identical to serial execution for every
// decomposition — the paper's requirement that the splitter/worker/joiner
// subgraph "exactly duplicates the original task's behavior".
struct DecompCase {
  int fp;
  int mp;
  int models;
};

class DecompositionEquivalence
    : public BodyFixture,
      public ::testing::WithParamInterface<DecompCase> {};

TEST_P(DecompositionEquivalence, ChunkedMatchesSerial) {
  const DecompCase c = GetParam();
  TargetDetectionBody body(params_, enrolled_);
  auto in = MakeT4Inputs(3, c.models);

  runtime::TaskOutputs serial;
  ASSERT_TRUE(body.Process(in, &serial).ok());
  auto serial_bp = serial.items.at(0).As<BackProjectionSet>();

  const int mp_eff = std::min(c.mp, c.models);
  const int chunks = c.fp * mp_eff;
  body.SetDecomposition(c.fp, mp_eff);
  std::vector<stm::Payload> partials;
  for (int i = 0; i < chunks; ++i) {
    stm::Payload partial;
    ASSERT_TRUE(body.ProcessChunk(in, i, chunks, &partial).ok());
    partials.push_back(std::move(partial));
  }
  runtime::TaskOutputs joined;
  ASSERT_TRUE(body.Join(in, std::move(partials), &joined).ok());
  auto chunked_bp = joined.items.at(0).As<BackProjectionSet>();

  ASSERT_EQ(chunked_bp->maps.size(), serial_bp->maps.size());
  for (std::size_t m = 0; m < serial_bp->maps.size(); ++m) {
    EXPECT_EQ(chunked_bp->maps[m], serial_bp->maps[m]) << "model " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecompositions, DecompositionEquivalence,
    ::testing::Values(DecompCase{1, 1, 1}, DecompCase{4, 1, 1},
                      DecompCase{1, 8, 8}, DecompCase{4, 1, 8},
                      DecompCase{4, 8, 8}, DecompCase{2, 3, 5},
                      DecompCase{3, 1, 2}, DecompCase{1, 2, 7}),
    [](const auto& info) {
      return "FP" + std::to_string(info.param.fp) + "xMP" +
             std::to_string(info.param.mp) + "m" +
             std::to_string(info.param.models);
    });

TEST_F(BodyFixture, ChunkCountMismatchRejected) {
  TargetDetectionBody body(params_, enrolled_);
  auto in = MakeT4Inputs(0, 4);
  body.SetDecomposition(2, 2);
  stm::Payload partial;
  EXPECT_FALSE(body.ProcessChunk(in, 0, 3, &partial).ok());
}

TEST_F(BodyFixture, PipelineEndToEndDetectsTargets) {
  // Run all five bodies by hand on one frame and check detections.
  const int models = 4;
  DigitizerBody digitizer(params_, [&](Timestamp) { return models; });
  HistogramBody histogram;
  ChangeDetectionBody change;
  TargetDetectionBody detect(params_, enrolled_);
  PeakDetectionBody peaks;

  runtime::TaskInputs din;
  din.ts = 11;
  runtime::TaskOutputs dout;
  ASSERT_TRUE(digitizer.Process(din, &dout).ok());
  stm::Item frame_item{11, dout.items.at(0)};

  runtime::TaskInputs hin;
  hin.ts = 11;
  hin.items = {frame_item};
  runtime::TaskOutputs hout;
  ASSERT_TRUE(histogram.Process(hin, &hout).ok());

  runtime::TaskInputs cin;
  cin.ts = 11;
  cin.items = {frame_item};
  runtime::TaskOutputs cout_;
  ASSERT_TRUE(change.Process(cin, &cout_).ok());

  runtime::TaskInputs tin;
  tin.ts = 11;
  tin.items = {frame_item, stm::Item{11, hout.items.at(0)},
               stm::Item{11, cout_.items.at(0)}};
  runtime::TaskOutputs tout;
  ASSERT_TRUE(detect.Process(tin, &tout).ok());

  runtime::TaskInputs pin;
  pin.ts = 11;
  pin.items = {stm::Item{11, tout.items.at(0)}};
  runtime::TaskOutputs pout;
  ASSERT_TRUE(peaks.Process(pin, &pout).ok());

  auto det = pout.items.at(0).As<DetectionSet>();
  ASSERT_EQ(det->detections.size(), static_cast<std::size_t>(models));
  for (int m = 0; m < models; ++m) {
    TargetPose pose = PlantedPose(params_, m, 11);
    EXPECT_NEAR(det->detections[static_cast<std::size_t>(m)].x, pose.x,
                params_.target_size)
        << "model " << m;
    EXPECT_NEAR(det->detections[static_cast<std::size_t>(m)].y, pose.y,
                params_.target_size)
        << "model " << m;
  }
}

// ---- cost models -----------------------------------------------------------------

TEST(PaperCostModelTest, ReproducesTable1Shape) {
  // The calibrated analytic costs must reproduce Table 1's ordering on a
  // 4-processor node.
  PaperCostParams p;
  auto config_time = [&](int models, int fp, int mp) {
    graph::DpVariant v = fp == 1 && mp == 1
                             ? graph::DpVariant{"serial", 1,
                                                PaperT4SerialCost(p, models),
                                                0, 0}
                             : PaperT4Variant(p, models, fp, mp);
    // Elapsed on 4 workers: split + rounds * chunk + join.
    const int rounds = (v.chunks + 3) / 4;
    return ticks::ToSeconds(v.split_cost + rounds * v.chunk_cost +
                            v.join_cost);
  };
  // One model: FP=4 is the best choice.
  const double m1_serial = config_time(1, 1, 1);
  const double m1_fp4 = config_time(1, 4, 1);
  EXPECT_NEAR(m1_serial, 0.876, 0.05);
  EXPECT_NEAR(m1_fp4, 0.275, 0.05);
  EXPECT_LT(m1_fp4, m1_serial);
  // Eight models: MP=8 beats FP=4 beats serial; FP=4xMP=8 over-splits.
  const double m8_serial = config_time(8, 1, 1);
  const double m8_mp8 = config_time(8, 1, 8);
  const double m8_fp4 = config_time(8, 4, 1);
  const double m8_both = config_time(8, 4, 8);
  EXPECT_NEAR(m8_serial, 6.850, 0.30);
  EXPECT_NEAR(m8_mp8, 1.857, 0.30);
  EXPECT_NEAR(m8_fp4, 2.033, 0.30);
  EXPECT_NEAR(m8_both, 2.155, 0.40);
  EXPECT_LT(m8_mp8, m8_fp4);
  EXPECT_LT(m8_fp4, m8_both + 0.4);
  EXPECT_LT(m8_both, m8_serial);
}

TEST(PaperCostModelTest, CoversAllRegimesAndTasks) {
  TrackerGraph tg = BuildTrackerGraph();
  regime::RegimeSpace space(1, 8);
  graph::CostModel cm = PaperCostModel(tg, space);
  EXPECT_TRUE(cm.Validate(tg.graph.task_count()).ok());
  EXPECT_EQ(cm.regime_count(), 8u);
  // T4 at one model has no MP variants; at 8 models it has them.
  EXPECT_EQ(cm.Get(RegimeId(0), tg.target_detection).variant_count(), 3u);
  EXPECT_EQ(cm.Get(RegimeId(7), tg.target_detection).variant_count(), 6u);
}

TEST(PaperCostModelTest, T4LinearInModels) {
  PaperCostParams p;
  const Tick c1 = PaperT4SerialCost(p, 1);
  const Tick c8 = PaperT4SerialCost(p, 8);
  EXPECT_GT(c8, 7 * c1 / 2);  // strongly increasing
  EXPECT_LT(c8, 9 * c1);
}

TEST(MeasuredCostModelTest, ProducesPlausibleCosts) {
  TrackerParams p = SmallParams();
  // Enough per-pixel work that timings are milliseconds, not microseconds:
  // at the default tiny kernel, single-core scheduling noise can dwarf the
  // chunk/serial ratio this test asserts on.
  p.pixel_work = 30;
  p.prep_passes = 200;
  TrackerGraph tg = BuildTrackerGraph(p);
  regime::RegimeSpace space(2, 2);
  MeasureOptions mo;
  mo.repetitions = 3;
  mo.fp_options = {1, 2};
  graph::CostModel cm = MeasureCostModel(tg, space, p, mo);
  ASSERT_TRUE(cm.Validate(tg.graph.task_count()).ok());
  const auto& t4 = cm.Get(RegimeId(0), tg.target_detection);
  EXPECT_GE(t4.variant_count(), 2u);
  EXPECT_GT(t4.serial_cost(), 0);
  // Chunked variants have smaller per-chunk cost than the serial whole.
  for (std::size_t v = 1; v < t4.variant_count(); ++v) {
    EXPECT_LT(t4.variant(VariantId(static_cast<int>(v))).chunk_cost,
              t4.serial_cost());
  }
}

}  // namespace
}  // namespace ss::tracker
