// Unit tests for the independent static schedule verifier (src/verify):
// each check fires on a handcrafted violation and stays quiet on legal
// schedules, findings carry their locus, and the report converts into the
// typed kCorruptArtifact status.
#include <gtest/gtest.h>

#include "graph/graph_io.hpp"
#include "sched/occupancy.hpp"
#include "sched/pipeline.hpp"
#include "stm/channel_table.hpp"
#include "verify/verifier.hpp"

namespace ss {
namespace {

using graph::MachineConfig;
using graph::TaskCost;
using sched::IterationSchedule;
using sched::PipelinedSchedule;
using sched::ScheduleEntry;
using verify::Check;
using verify::ScheduleVerifier;
using verify::VerifyReport;

constexpr RegimeId kR0 = RegimeId(0);

/// src -> mid -> sink chain; mid has a 2-chunk data-parallel variant; a
/// nonzero communication latency so cross-processor edges are charged.
graph::ProblemSpec ChainSpec() {
  graph::ProblemSpec spec;
  const TaskId src = spec.graph.AddTask("src", true);
  const TaskId mid = spec.graph.AddTask("mid");
  const TaskId sink = spec.graph.AddTask("sink");
  const ChannelId c0 = spec.graph.AddChannel("frames", 1000);
  const ChannelId c1 = spec.graph.AddChannel("feats", 1000);
  spec.graph.SetProducer(src, c0);
  spec.graph.AddConsumer(mid, c0);
  spec.graph.SetProducer(mid, c1);
  spec.graph.AddConsumer(sink, c1);
  spec.costs.Set(kR0, src, TaskCost::Serial(10));
  TaskCost mc = TaskCost::Serial(100);
  mc.AddVariant(graph::DpVariant{"x2", 2, 40, 5, 5});
  spec.costs.Set(kR0, mid, std::move(mc));
  spec.costs.Set(kR0, sink, TaskCost::Serial(20));
  spec.machine = MachineConfig::SingleNode(2);
  spec.comm.intra_latency = 7;
  spec.regime_count = 1;
  return spec;
}

std::vector<VariantId> Serial3() { return {VariantId(0), VariantId(0),
                                           VariantId(0)}; }

/// The canonical legal serial schedule for ChainSpec on one processor:
/// src [0,10) -> mid [10,110) -> sink [110,130), all on P0.
IterationSchedule LegalIteration() {
  return IterationSchedule(Serial3(),
                           {ScheduleEntry{0, ProcId(0), 0, 10},
                            ScheduleEntry{1, ProcId(0), 10, 100},
                            ScheduleEntry{2, ProcId(0), 110, 20}});
}

PipelinedSchedule LegalPipeline() {
  PipelinedSchedule ps;
  ps.iteration = LegalIteration();
  ps.initiation_interval = 130;
  ps.rotation = 0;
  ps.procs = 2;
  return ps;
}

TEST(VerifyIterationTest, LegalScheduleIsClean) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  VerifyReport report = verifier.VerifyIteration(LegalIteration());
  EXPECT_TRUE(report.clean()) << report.ToTable();
}

TEST(VerifyIterationTest, CatchesPrecedenceAndCommCharge) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  // mid hops to P1 but starts right at src's end — the cross-processor
  // communication charge for the 1000-byte channel is dropped.
  IterationSchedule iter(Serial3(),
                         {ScheduleEntry{0, ProcId(0), 0, 10},
                          ScheduleEntry{1, ProcId(1), 10, 100},
                          ScheduleEntry{2, ProcId(1), 110, 20}});
  VerifyReport report = verifier.VerifyIteration(iter);
  EXPECT_TRUE(report.Has(Check::kPrecedence)) << report.ToTable();
  EXPECT_FALSE(report.ok());
  // The same placement is legal once the charge is paid.
  const Tick charge = spec.comm.Cost(1000, true);
  IterationSchedule paid(Serial3(),
                         {ScheduleEntry{0, ProcId(0), 0, 10},
                          ScheduleEntry{1, ProcId(1), 10 + charge, 100},
                          ScheduleEntry{2, ProcId(1), 110 + charge, 20}});
  EXPECT_TRUE(verifier.VerifyIteration(paid).clean());
}

TEST(VerifyIterationTest, CatchesProcessorOverlap) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  IterationSchedule iter(Serial3(),
                         {ScheduleEntry{0, ProcId(0), 0, 10},
                          ScheduleEntry{1, ProcId(0), 10, 100},
                          ScheduleEntry{2, ProcId(0), 50, 20}});
  VerifyReport report = verifier.VerifyIteration(iter);
  EXPECT_TRUE(report.Has(Check::kOverlap)) << report.ToTable();
}

TEST(VerifyIterationTest, CatchesDurationMismatch) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  IterationSchedule iter(Serial3(),
                         {ScheduleEntry{0, ProcId(0), 0, 10},
                          ScheduleEntry{1, ProcId(0), 10, 90},
                          ScheduleEntry{2, ProcId(0), 110, 20}});
  VerifyReport report = verifier.VerifyIteration(iter);
  EXPECT_TRUE(report.Has(Check::kDuration)) << report.ToTable();
}

TEST(VerifyIterationTest, CatchesVariantDefects) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  // Variant id out of range for mid (it has 2 variants).
  IterationSchedule bad_id({VariantId(0), VariantId(5), VariantId(0)},
                           LegalIteration().entries());
  EXPECT_TRUE(verifier.VerifyIteration(bad_id).Has(Check::kVariants));
  // Wrong vector length.
  IterationSchedule short_vec({VariantId(0)}, LegalIteration().entries());
  EXPECT_TRUE(verifier.VerifyIteration(short_vec).Has(Check::kVariants));
  // Regime outside the problem.
  ScheduleVerifier wrong_regime(spec, RegimeId(3));
  EXPECT_TRUE(
      wrong_regime.VerifyIteration(LegalIteration()).Has(Check::kVariants));
}

TEST(VerifyIterationTest, CatchesProcOutOfRangeAndNegativeStart) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  IterationSchedule bad_proc(Serial3(),
                             {ScheduleEntry{0, ProcId(5), 0, 10},
                              ScheduleEntry{1, ProcId(0), 10, 100},
                              ScheduleEntry{2, ProcId(0), 110, 20}});
  EXPECT_TRUE(verifier.VerifyIteration(bad_proc).Has(Check::kProcRange));

  IterationSchedule negative(Serial3(),
                             {ScheduleEntry{0, ProcId(0), -5, 10},
                              ScheduleEntry{1, ProcId(0), 10, 100},
                              ScheduleEntry{2, ProcId(0), 110, 20}});
  EXPECT_TRUE(verifier.VerifyIteration(negative).Has(Check::kStartTime));
}

TEST(VerifyIterationTest, CatchesMissingAndDuplicateOps) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  IterationSchedule missing(Serial3(),
                            {ScheduleEntry{0, ProcId(0), 0, 10},
                             ScheduleEntry{1, ProcId(0), 10, 100}});
  EXPECT_TRUE(verifier.VerifyIteration(missing).Has(Check::kCoverage));

  IterationSchedule dup(Serial3(),
                        {ScheduleEntry{0, ProcId(0), 0, 10},
                         ScheduleEntry{1, ProcId(0), 10, 100},
                         ScheduleEntry{2, ProcId(1), 110, 20},
                         ScheduleEntry{2, ProcId(0), 110, 20}});
  EXPECT_TRUE(verifier.VerifyIteration(dup).Has(Check::kCoverage));
}

TEST(VerifyIterationTest, LowerBoundFlagsImpossiblyFastSchedule) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  // All three ops start immediately: coverage and durations are intact, but
  // the 100-tick makespan beats the 130-tick critical path — impossible for
  // any legal schedule, so the artifact is corrupt (it also violates
  // precedence, which is how it got that fast).
  IterationSchedule compressed(Serial3(),
                               {ScheduleEntry{0, ProcId(0), 0, 10},
                                ScheduleEntry{1, ProcId(1), 0, 100},
                                ScheduleEntry{2, ProcId(0), 10, 20}});
  VerifyReport report = verifier.VerifyIteration(compressed);
  EXPECT_TRUE(report.Has(Check::kLowerBound)) << report.ToTable();
  EXPECT_TRUE(report.Has(Check::kPrecedence));
}

// ---- pipeline checks -------------------------------------------------------

TEST(VerifyPipelineTest, LegalPipelineIsClean) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  VerifyReport report = verifier.Verify(LegalPipeline());
  EXPECT_TRUE(report.clean()) << report.ToTable();
}

TEST(VerifyPipelineTest, ShrunkIntervalCollides) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  PipelinedSchedule ps = LegalPipeline();
  ps.initiation_interval -= 1;
  VerifyReport report = verifier.Verify(ps);
  EXPECT_TRUE(report.Has(Check::kPipelineCollision)) << report.ToTable();
  EXPECT_FALSE(report.ok());
}

TEST(VerifyPipelineTest, GrownIntervalWarnsSlack) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  PipelinedSchedule ps = LegalPipeline();
  ps.initiation_interval += 37;
  VerifyReport report = verifier.Verify(ps);
  EXPECT_TRUE(report.Has(Check::kPipelineSlack)) << report.ToTable();
  EXPECT_TRUE(report.ok());  // slack is a warning: legal, just not minimal
  // And the warning is suppressible.
  verify::VerifyOptions options;
  options.check_ii_minimal = false;
  ScheduleVerifier lax(spec, kR0, options);
  EXPECT_TRUE(lax.Verify(ps).clean());
}

TEST(VerifyPipelineTest, ShapeDefects) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  PipelinedSchedule ps = LegalPipeline();
  ps.rotation = 5;
  EXPECT_TRUE(verifier.Verify(ps).Has(Check::kPipelineShape));
  ps = LegalPipeline();
  ps.procs = 3;  // machine only has 2
  EXPECT_TRUE(verifier.Verify(ps).Has(Check::kPipelineShape));
  ps = LegalPipeline();
  ps.initiation_interval = 0;
  EXPECT_TRUE(verifier.Verify(ps).Has(Check::kPipelineShape));
  ps = LegalPipeline();
  ps.procs = 1;  // entries on P0 only, still legal; modulus 1 forces ii
  ps.rotation = 0;
  EXPECT_TRUE(verifier.Verify(ps).clean());
}

TEST(VerifyPipelineTest, MinConflictFreeIntervalMatchesComposer) {
  const IterationSchedule iter = LegalIteration();
  for (int procs = 1; procs <= 3; ++procs) {
    for (int rotation = 0; rotation < procs; ++rotation) {
      EXPECT_EQ(
          ScheduleVerifier::MinConflictFreeInterval(iter, procs, rotation),
          sched::PipelineComposer::MinInitiationInterval(iter, procs,
                                                         rotation))
          << "procs " << procs << " rotation " << rotation;
    }
  }
}

TEST(VerifyPipelineTest, RotationSpreadsIterationsAcrossProcs) {
  // With rotation 1 over 2 procs a same-proc clash only happens at even
  // iteration distances, so the minimal interval is half the latency.
  const IterationSchedule iter = LegalIteration();
  EXPECT_EQ(ScheduleVerifier::MinConflictFreeInterval(iter, 2, 1), 65);
  EXPECT_FALSE(ScheduleVerifier::HasCollision(iter, 2, 1, 65));
  EXPECT_TRUE(ScheduleVerifier::HasCollision(iter, 2, 1, 64));
}

// ---- channel capacity ------------------------------------------------------

TEST(VerifyChannelTest, BoundsInFlightItemsAgainstCapacity) {
  const auto spec = ChainSpec();
  // Rotation 1 with ii=65 keeps two frames in flight on channel "frames"
  // (lifetime 100 spans two initiations).
  PipelinedSchedule ps;
  ps.iteration = LegalIteration();
  ps.initiation_interval = 65;
  ps.rotation = 1;
  ps.procs = 2;
  ScheduleVerifier unbounded(spec, kR0);
  EXPECT_TRUE(unbounded.Verify(ps).clean()) << unbounded.Verify(ps).ToTable();

  verify::VerifyOptions options;
  options.uniform_channel_capacity = 1;
  ScheduleVerifier bounded(spec, kR0, options);
  VerifyReport report = bounded.Verify(ps);
  EXPECT_TRUE(report.Has(Check::kChannelCapacity)) << report.ToTable();

  // A per-channel override relaxes the bound for the hot channel only.
  options.channel_capacity["frames"] = 2;
  ScheduleVerifier relaxed(spec, kR0, options);
  EXPECT_TRUE(relaxed.Verify(ps).clean());
}

TEST(VerifyChannelTest, ChannelCapacitiesReadsTable) {
  stm::ChannelTable table;
  stm::ChannelOptions bounded;
  bounded.capacity = 3;
  ASSERT_TRUE(table.Create("frames", bounded).ok());
  ASSERT_TRUE(table.Create("feats").ok());  // unbounded
  auto caps = verify::ChannelCapacities(table);
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps.at("frames"), 3u);
}

// ---- artifact cross-checks -------------------------------------------------

TEST(VerifyArtifactTest, CrossChecksReportedLatencyAndOccupancy) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  const PipelinedSchedule ps = LegalPipeline();
  graph::OpGraph og = graph::OpGraph::Expand(spec.graph, spec.costs, kR0,
                                             ps.iteration.variants());
  const sched::OccupancyReport occupancy =
      sched::AnalyzeOccupancy(spec.graph, og, ps);

  EXPECT_TRUE(verifier.VerifyArtifact(ps, 130, &occupancy).clean());

  // Tampered minimal latency.
  EXPECT_TRUE(verifier.VerifyArtifact(ps, 120, &occupancy)
                  .Has(Check::kArtifact));

  // Tampered per-channel bound.
  sched::OccupancyReport tampered = occupancy;
  tampered.channels.at(0).max_items += 1;
  tampered.total_items += 1;
  EXPECT_TRUE(
      verifier.VerifyArtifact(ps, 130, &tampered).Has(Check::kArtifact));

  // Inconsistent totals.
  sched::OccupancyReport bad_total = occupancy;
  bad_total.total_items += 5;
  EXPECT_TRUE(
      verifier.VerifyArtifact(ps, 130, &bad_total).Has(Check::kArtifact));
}

// ---- structural (spec-free) pass ------------------------------------------

TEST(VerifyStructureTest, AcceptsLegalAndFlagsDefects) {
  EXPECT_TRUE(ScheduleVerifier::VerifyStructure(LegalPipeline()).clean());

  PipelinedSchedule ps = LegalPipeline();
  ps.iteration = IterationSchedule(Serial3(),
                                   {ScheduleEntry{0, ProcId(0), 0, 10},
                                    ScheduleEntry{1, ProcId(0), 5, 100},
                                    ScheduleEntry{2, ProcId(0), 110, 20}});
  EXPECT_TRUE(ScheduleVerifier::VerifyStructure(ps).Has(Check::kOverlap));

  ps = LegalPipeline();
  ps.rotation = -1;
  EXPECT_TRUE(
      ScheduleVerifier::VerifyStructure(ps).Has(Check::kPipelineShape));

  ps = LegalPipeline();
  ps.procs = 1;  // entries on P0 fit, but ii 130 == latency stays legal
  EXPECT_TRUE(ScheduleVerifier::VerifyStructure(ps).clean());
  ps.initiation_interval = 129;
  EXPECT_TRUE(ScheduleVerifier::VerifyStructure(ps)
                  .Has(Check::kPipelineCollision));
}

// ---- findings & status -----------------------------------------------------

TEST(VerifyReportTest, RendersAndConvertsToTypedStatus) {
  const auto spec = ChainSpec();
  ScheduleVerifier verifier(spec, kR0);
  PipelinedSchedule ps = LegalPipeline();
  ps.initiation_interval = 1;
  VerifyReport report = verifier.Verify(ps);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_NE(report.ToTable().find("pipeline-collision"), std::string::npos);
  const Status status = report.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kCorruptArtifact);
  EXPECT_NE(status.ToString().find("CORRUPT_ARTIFACT"), std::string::npos);

  EXPECT_TRUE(VerifyReport().ToStatus().ok());

  verify::Finding f;
  f.check = Check::kPrecedence;
  f.op = 3;
  f.proc = ProcId(1);
  f.tick = 250;
  f.message = "late";
  EXPECT_EQ(f.ToString(), "ERROR precedence op=3 proc=P1 t=250us: late");
}

}  // namespace
}  // namespace ss
