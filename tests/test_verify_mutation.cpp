// Mutation tests for the static schedule verifier: known-good solver
// outputs are perturbed one defect at a time (shifted starts, swapped
// processors, dropped communication charges, shrunk initiation intervals,
// tampered rotations, ...) and the verifier must flag every mutant with the
// matching check while passing the unmutated originals. Each mutation class
// tracks how often it was exercised and caught; the suite demands a 100%
// catch rate and at least one exercise per class across the seed sweep.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "graph/op_graph.hpp"
#include "graph/synthetic.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal.hpp"
#include "sched/pipeline.hpp"
#include "verify/verifier.hpp"

namespace ss {
namespace {

using graph::CommModel;
using graph::MachineConfig;
using graph::OpGraph;
using sched::IterationSchedule;
using sched::PipelineComposer;
using sched::PipelinedSchedule;
using sched::ScheduleEntry;
using verify::Check;
using verify::ScheduleVerifier;
using verify::VerifyReport;

constexpr RegimeId kR0 = RegimeId(0);

/// Per-class exercised/caught accounting. A class that is exercised but not
/// caught is a verifier escape; a class never exercised across the sweep
/// means the mutation generator lost coverage.
struct Tally {
  int exercised = 0;
  int caught = 0;
};

PipelinedSchedule WithEntries(const PipelinedSchedule& s,
                              std::vector<ScheduleEntry> entries) {
  PipelinedSchedule m = s;
  m.iteration = IterationSchedule(s.iteration.variants(), std::move(entries));
  return m;
}

/// Runs one mutant through the verifier and records whether `expected`
/// fired. Every mutant must be an error (ok() == false) unless
/// `warning_only`.
void Score(const ScheduleVerifier& verifier, const PipelinedSchedule& mutant,
           Check expected, bool warning_only, Tally* tally,
           const char* what) {
  tally->exercised += 1;
  const VerifyReport report = verifier.Verify(mutant);
  const bool flagged = report.Has(expected);
  if (flagged) tally->caught += 1;
  EXPECT_TRUE(flagged) << what << ": expected finding did not fire\n"
                       << report.ToTable();
  if (warning_only) {
    EXPECT_TRUE(report.ok()) << what << ": should stay serveable\n"
                             << report.ToTable();
  } else {
    EXPECT_FALSE(report.ok()) << what << ": mutant not rejected";
  }
}

class MutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(MutationSweep, VerifierCatchesEveryMutantClass) {
  std::map<std::string, Tally> tally;
  int solved = 0;

  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6151 +
            static_cast<std::uint64_t>(GetParam()) + 101);
    graph::SyntheticOptions gen;
    gen.layers = 2 + static_cast<int>(rng.NextBelow(2));
    graph::SyntheticProblem dag = [&] {
      switch (seed % 3) {
        case 0: return graph::MakeChain(rng, 3 + gen.layers, gen);
        case 1: return graph::MakeForkJoin(
            rng, 2 + static_cast<int>(rng.NextBelow(3)), gen);
        default: return graph::MakeLayered(rng, gen);
      }
    }();
    ASSERT_TRUE(dag.graph.Validate().ok()) << dag.family;

    const MachineConfig machine =
        MachineConfig::SingleNode(2 + static_cast<int>(rng.NextBelow(3)));
    CommModel comm;
    comm.intra_latency = 17;  // nonzero so dropped charges are observable

    sched::OptimalScheduler optimal(dag.graph, dag.costs, comm, machine);
    sched::OptimalOptions opts;
    opts.max_nodes = 5'000'000;
    auto result = optimal.Schedule(kR0, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->budget_exhausted) continue;
    solved += 1;

    graph::ProblemSpec spec;
    spec.graph = dag.graph;
    spec.costs = dag.costs;
    spec.machine = machine;
    spec.comm = comm;
    spec.regime_count = 1;
    ScheduleVerifier verifier(spec, kR0);

    const PipelinedSchedule& good = result->best;
    const std::vector<ScheduleEntry> entries = good.iteration.entries();
    const OpGraph og = OpGraph::Expand(dag.graph, dag.costs, kR0,
                                       good.iteration.variants());

    // The unmutated solver output must verify clean, including its stored
    // minimal latency; a list-scheduler composition must also pass.
    ASSERT_TRUE(
        verifier.VerifyArtifact(good, result->min_latency).clean())
        << verifier.VerifyArtifact(good, result->min_latency).ToTable();
    auto heuristic =
        sched::ListScheduler(comm, machine)
            .ScheduleBestVariant(dag.graph, dag.costs, kR0);
    ASSERT_TRUE(heuristic.ok());
    const PipelinedSchedule composed = PipelineComposer::Compose(
        *heuristic, machine.total_procs());
    EXPECT_TRUE(verifier.Verify(composed).ok())
        << verifier.Verify(composed).ToTable();

    std::vector<const ScheduleEntry*> by_op(og.op_count(), nullptr);
    for (const auto& e : entries) by_op[static_cast<std::size_t>(e.op)] = &e;

    // Class 1: start-shift — a consumer starts alongside its producer.
    for (const auto& edge : og.edges()) {
      const ScheduleEntry* from = by_op[static_cast<std::size_t>(edge.from)];
      if (from->duration <= 0) continue;
      auto mutated = entries;
      for (auto& e : mutated) {
        if (e.op == edge.to) e.start = from->start;
      }
      Score(verifier, WithEntries(good, std::move(mutated)),
            Check::kPrecedence, false, &tally["start-shift"],
            "start-shift");
      break;
    }

    // Class 2: proc-collide — move an op onto a processor that is busy.
    for (const auto& a : entries) {
      if (a.duration <= 0) continue;
      for (const auto& b : entries) {
        if (b.op == a.op || b.proc == a.proc) continue;
        auto mutated = entries;
        for (auto& e : mutated) {
          if (e.op == b.op) {
            e.proc = a.proc;
            e.start = a.start;
            e.duration = a.duration > 0 ? a.duration : e.duration;
          }
        }
        Score(verifier, WithEntries(good, std::move(mutated)),
              Check::kOverlap, false, &tally["proc-collide"],
              "proc-collide");
        goto collide_done;
      }
    }
  collide_done:

    // Class 3: comm-drop — schedule a cross-processor consumer as if the
    // communication were free.
    for (const auto& edge : og.edges()) {
      const ScheduleEntry* from = by_op[static_cast<std::size_t>(edge.from)];
      const ScheduleEntry* to = by_op[static_cast<std::size_t>(edge.to)];
      if (from->proc == to->proc) continue;
      const Tick charge = comm.Cost(
          edge.bytes, machine.SameNode(from->proc, to->proc));
      if (charge <= 0 || to->start < from->end() + charge) continue;
      auto mutated = entries;
      for (auto& e : mutated) {
        if (e.op == edge.to) e.start = from->end();
      }
      // Collapsing the charge may also create an overlap; the precedence
      // check must fire regardless.
      auto mutant = WithEntries(good, std::move(mutated));
      Score(verifier, mutant, Check::kPrecedence, false,
            &tally["comm-drop"], "comm-drop");
      break;
    }

    // Class 4: ii-shrink — report a faster pipeline than legal.
    if (good.initiation_interval > 1) {
      PipelinedSchedule m = good;
      m.initiation_interval -= 1;
      Score(verifier, m, Check::kPipelineCollision, false,
            &tally["ii-shrink"], "ii-shrink");
    }

    // Class 5: ii-grow — legal but not minimal; must warn, stay serveable.
    {
      PipelinedSchedule m = good;
      m.initiation_interval += 1;
      Score(verifier, m, Check::kPipelineSlack, true, &tally["ii-grow"],
            "ii-grow");
    }

    // Class 6: rotation-tamper — replay under a different rotation. Only a
    // mutant whose new minimal interval exceeds the recorded II is
    // guaranteed to collide (oracle: the composer's own derivation).
    if (good.procs > 1) {
      PipelinedSchedule m = good;
      m.rotation = (m.rotation + 1) % m.procs;
      const Tick min_ii = PipelineComposer::MinInitiationInterval(
          m.iteration, m.procs, m.rotation);
      if (min_ii > m.initiation_interval) {
        Score(verifier, m, Check::kPipelineCollision, false,
              &tally["rotation-tamper"], "rotation-tamper");
      }
    }

    // Class 7: duration-tamper — an entry claims the wrong variant cost.
    for (const auto& a : entries) {
      auto mutated = entries;
      for (auto& e : mutated) {
        if (e.op == a.op) e.duration += 3;
      }
      Score(verifier, WithEntries(good, std::move(mutated)),
            Check::kDuration, false, &tally["duration-tamper"],
            "duration-tamper");
      break;
    }

    // Class 8: proc-range — an entry escapes the rotation modulus.
    {
      auto mutated = entries;
      mutated.front().proc = ProcId(good.procs);
      Score(verifier, WithEntries(good, std::move(mutated)),
            Check::kProcRange, false, &tally["proc-range"], "proc-range");
    }

    // Class 9: entry-drop — an op vanishes from the schedule.
    {
      auto mutated = entries;
      mutated.pop_back();
      Score(verifier, WithEntries(good, std::move(mutated)),
            Check::kCoverage, false, &tally["entry-drop"], "entry-drop");
    }

    // Class 10: variant-tamper — the variant vector points outside the
    // cost model.
    {
      std::vector<VariantId> variants = good.iteration.variants();
      const TaskId t0 = TaskId(0);
      variants[0] = VariantId(static_cast<int>(
          dag.costs.Get(kR0, t0).variant_count()));
      PipelinedSchedule m = good;
      m.iteration = IterationSchedule(std::move(variants),
                                      good.iteration.entries());
      Score(verifier, m, Check::kVariants, false, &tally["variant-tamper"],
            "variant-tamper");
    }

    // Class 11: metadata-tamper — stored minimal latency disagrees with
    // the schedule (the VerifyArtifact cross-check, not Verify).
    {
      tally["metadata-tamper"].exercised += 1;
      const VerifyReport report =
          verifier.VerifyArtifact(good, result->min_latency + 1);
      if (report.Has(Check::kArtifact)) tally["metadata-tamper"].caught += 1;
      EXPECT_TRUE(report.Has(Check::kArtifact)) << report.ToTable();
      EXPECT_FALSE(report.ok());
    }
  }

  if (solved == 0) GTEST_SKIP() << "every seed hit the search budget";

  // 100% catch rate on every class, and every class exercised at least
  // once (>= 5 classes required by the oracle contract; we track 11).
  std::size_t exercised_classes = 0;
  for (const auto& [name, t] : tally) {
    if (t.exercised > 0) exercised_classes += 1;
    EXPECT_EQ(t.caught, t.exercised) << "verifier escape in class " << name;
  }
  EXPECT_GE(exercised_classes, 5u);
  EXPECT_GT(tally["ii-grow"].exercised, 0);
  EXPECT_GT(tally["duration-tamper"].exercised, 0);
  EXPECT_GT(tally["proc-range"].exercised, 0);
  EXPECT_GT(tally["entry-drop"].exercised, 0);
  EXPECT_GT(tally["variant-tamper"].exercised, 0);
  EXPECT_GT(tally["metadata-tamper"].exercised, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep, ::testing::Range(0, 2));

}  // namespace
}  // namespace ss
