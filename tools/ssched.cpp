// ssched — command-line schedule explorer.
//
// Reads a scheduling problem (.ssg text format, see graph/graph_io.hpp),
// runs the paper's Fig. 6 optimal scheduler (or the list heuristic), and
// prints the schedule, its pipelined form, a Gantt chart and the channel
// occupancy analysis.
//
//   ssched <file.ssg> [--regime N] [--heuristic] [--frames N]
//          [--no-rotation] [--gantt-ms N] [--dot]
//   ssched --demo   # built-in color tracker problem, regime = 8 models
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/graph_io.hpp"
#include "graph/op_graph.hpp"
#include "regime/regime.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/occupancy.hpp"
#include "sched/optimal.hpp"
#include "sched/pipeline.hpp"
#include "sim/schedule_executor.hpp"
#include "sim/trace.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

using namespace ss;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <file.ssg> [options]\n"
      "       %s --demo [options]\n"
      "options:\n"
      "  --regime N     schedule regime N (default 0)\n"
      "  --heuristic    use the critical-path list scheduler instead of\n"
      "                 the exhaustive optimal search\n"
      "  --frames N     frames to replay for the Gantt chart (default 6)\n"
      "  --no-rotation  disallow processor rotation when pipelining\n"
      "  --gantt-ms N   Gantt row granularity in milliseconds (default\n"
      "                 latency/24)\n"
      "  --throughput-bound T   maximize throughput subject to latency <= T\n"
      "                 (time with unit suffix, e.g. 150ms) instead of\n"
      "                 minimizing latency\n"
      "  --dot          also print the task graph in Graphviz dot format\n",
      argv0, argv0);
  return 2;
}

graph::ProblemSpec DemoProblem() {
  graph::ProblemSpec spec;
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  regime::RegimeSpace space(1, 8);
  spec.costs = tracker::PaperCostModel(tg, space);
  spec.graph = std::move(tg.graph);
  spec.machine = graph::MachineConfig::SingleNode(4);
  spec.regime_count = space.size();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool demo = false;
  bool heuristic = false;
  bool dot = false;
  bool allow_rotation = true;
  int regime_index = 0;
  std::size_t frames = 6;
  double gantt_ms = 0;
  std::string throughput_bound;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--heuristic") {
      heuristic = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--no-rotation") {
      allow_rotation = false;
    } else if (arg == "--regime") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      regime_index = std::atoi(v);
    } else if (arg == "--frames") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      frames = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--gantt-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      gantt_ms = std::atof(v);
    } else if (arg == "--throughput-bound") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      throughput_bound = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (!demo && path.empty()) return Usage(argv[0]);

  graph::ProblemSpec spec;
  if (demo) {
    spec = DemoProblem();
    if (regime_index == 0) regime_index = 7;  // 8 models
  } else {
    auto loaded = graph::LoadProblemFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    spec = std::move(*loaded);
  }
  if (regime_index < 0 ||
      static_cast<std::size_t>(regime_index) >= spec.regime_count) {
    std::fprintf(stderr, "error: regime %d out of range (0..%zu)\n",
                 regime_index, spec.regime_count - 1);
    return 1;
  }
  const RegimeId regime(regime_index);

  std::printf("problem: %zu tasks, %zu channels, %zu regime(s), %s\n\n",
              spec.graph.task_count(), spec.graph.channel_count(),
              spec.regime_count, spec.machine.ToString().c_str());
  std::printf("%s\n", spec.graph.ToText().c_str());
  if (dot) std::printf("%s\n", spec.graph.ToDot().c_str());

  sched::PipelinedSchedule schedule;
  if (heuristic) {
    sched::ListScheduler list(spec.comm, spec.machine);
    auto iter = list.ScheduleBestVariant(spec.graph, spec.costs, regime);
    if (!iter.ok()) {
      std::fprintf(stderr, "error: %s\n", iter.status().ToString().c_str());
      return 1;
    }
    sched::PipelineOptions popts;
    popts.allow_rotation = allow_rotation;
    schedule = sched::PipelineComposer::Compose(
        *iter, spec.machine.total_procs(), popts);
    std::printf("list-scheduler result (heuristic, not optimal):\n");
  } else {
    sched::OptimalScheduler scheduler(spec.graph, spec.costs, spec.comm,
                                      spec.machine);
    sched::OptimalOptions opts;
    opts.pipeline.allow_rotation = allow_rotation;
    Stopwatch sw;
    Expected<sched::OptimalResult> result = [&] {
      if (throughput_bound.empty()) return scheduler.Schedule(regime, opts);
      auto bound = graph::ParseTickValue(throughput_bound);
      if (!bound.ok()) return Expected<sched::OptimalResult>(bound.status());
      std::printf("throughput mode: maximizing throughput with latency <= "
                  "%s\n", FormatTick(*bound).c_str());
      return scheduler.ScheduleForThroughput(regime, *bound, opts);
    }();
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("optimal schedule (regime %d): searched %llu nodes over "
                "%llu variant combos in %.1f ms%s\n",
                regime_index,
                static_cast<unsigned long long>(result->nodes_explored),
                static_cast<unsigned long long>(
                    result->variant_combinations),
                1e3 * sw.ElapsedSeconds(),
                result->budget_exhausted ? "  [budget exhausted]" : "");
    std::printf("latency-optimal schedules: %zu\n", result->optimal.size());
    schedule = std::move(result->best);
  }

  graph::OpGraph og = graph::OpGraph::Expand(
      spec.graph, spec.costs, regime, schedule.iteration.variants());
  std::printf("\n%s\n", schedule.iteration.ToString(og).c_str());
  std::printf("pipelined: %s\n\n", schedule.ToString().c_str());

  auto occupancy = sched::AnalyzeOccupancy(spec.graph, og, schedule);
  std::printf("channel occupancy (max live items): ");
  for (std::size_t c = 0; c < occupancy.channels.size(); ++c) {
    if (c) std::printf(", ");
    std::printf("%s=%zu", occupancy.channels[c].name.c_str(),
                occupancy.channels[c].max_items);
  }
  std::printf("  (required capacity %zu)\n\n",
              occupancy.required_capacity);

  sim::ScheduleRunOptions run;
  run.frames = frames;
  auto replay = sim::RunSchedule(schedule, og, run);
  sim::GanttOptions gantt;
  gantt.row_ticks =
      gantt_ms > 0
          ? ticks::FromMillis(gantt_ms)
          : std::max<Tick>(1, schedule.iteration.Latency() / 24);
  gantt.max_rows = 60;
  std::printf("%s\n",
              RenderGantt(replay.trace, spec.machine.total_procs(), gantt)
                  .c_str());
  std::printf("replay: %s\n", replay.metrics.ToString().c_str());
  return 0;
}
