// ssched — command-line schedule explorer.
//
// Reads a scheduling problem (.ssg text format, see graph/graph_io.hpp),
// runs the paper's Fig. 6 optimal scheduler (or the list heuristic), and
// prints the schedule, its pipelined form, a Gantt chart and the channel
// occupancy analysis.
//
//   ssched <file.ssg> [--regime N] [--heuristic] [--frames N]
//          [--no-rotation] [--gantt-ms N] [--dot]
//   ssched --demo   # built-in color tracker problem, regime = 8 models
//   ssched --demo --serve-bench 8   # hammer the schedule service
//   ssched --serve --listen 127.0.0.1:7077   # multi-tenant TCP server
//   ssched stats 127.0.0.1:7077              # query a running server
//   ssched verify <file.ssg> <file.sscache>  # audit a cache snapshot
//                                            # with the static verifier
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_io.hpp"
#include "graph/op_graph.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "regime/regime.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/occupancy.hpp"
#include "sched/optimal.hpp"
#include "sched/pipeline.hpp"
#include "service/schedule_cache.hpp"
#include "service/schedule_service.hpp"
#include "verify/verifier.hpp"
#include "sim/schedule_executor.hpp"
#include "sim/trace.hpp"
#include "tenant/tenant.hpp"
#include "tenant/tenant_service.hpp"
#include "tracker/costs.hpp"
#include "tracker/graph_builder.hpp"

using namespace ss;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <file.ssg> [options]\n"
      "       %s --demo [options]\n"
      "       ssched --serve --listen <[host:]port> [--tenants <file>]\n"
      "              [--max-tenants N] [--workers N] [--snapshot <file>]\n"
      "       ssched stats <host:port>   # query a running server\n"
      "       ssched verify <file.ssg> <file.sscache> [--regime N]\n"
      "                     [--capacity N]   # audit snapshot artifacts\n"
      "options:\n"
      "  --regime N     schedule regime N (default 0)\n"
      "  --heuristic    use the critical-path list scheduler instead of\n"
      "                 the exhaustive optimal search\n"
      "  --frames N     frames to replay for the Gantt chart (default 6)\n"
      "  --no-rotation  disallow processor rotation when pipelining\n"
      "  --gantt-ms N   Gantt row granularity in milliseconds (default\n"
      "                 latency/24)\n"
      "  --throughput-bound T   maximize throughput subject to latency <= T\n"
      "                 (time with unit suffix, e.g. 150ms) instead of\n"
      "                 minimizing latency\n"
      "  --solver-threads N  threads for the branch-and-bound search\n"
      "                 (default 1; 0 = one per hardware thread; results\n"
      "                 are identical for every thread count)\n"
      "  --solver-pruning full|basic|none  search reductions for the exact\n"
      "                 solver (default full; basic = processor/ready\n"
      "                 symmetry only; none = pure enumeration, for\n"
      "                 cross-checking). All levels find the same minimum\n"
      "                 latency; weaker levels just explore more nodes\n"
      "  --dot          also print the task graph in Graphviz dot format\n"
      "  --serve-bench N  skip the schedule printout and instead run N\n"
      "                 client threads through the in-process schedule\n"
      "                 service (mixed regimes), printing throughput and\n"
      "                 the service counters; with a .ssg input the warm\n"
      "                 cache is snapshotted next to the file\n"
      "serve options (with --serve):\n"
      "  --listen ADDR  [host:]port to bind (port 0 = ephemeral, printed\n"
      "                 at startup); default 127.0.0.1:7077\n"
      "  --tenants F    tenant config file: one line per tenant,\n"
      "                 'tenant <name> [weight=W] [rate=R] [burst=B]\n"
      "                 [queue=N]'; unlisted tenants auto-register with\n"
      "                 defaults\n"
      "  --max-tenants N  registry capacity (default 64)\n"
      "  --workers N    service worker threads (default: half the\n"
      "                 hardware threads, at least 2)\n"
      "  --snapshot F   warm-cache snapshot file loaded at startup and\n"
      "                 written on drain\n"
      "  --max-pending-solves N  queued+inflight solve admission bound;\n"
      "                 excess solves are shed with kOverloaded\n"
      "                 (default 256, 0 = unbounded)\n"
      "  --max-inflight N  per-connection pipelined-solve cap, shed with\n"
      "                 kOverloaded past it (default 64, 0 = unbounded)\n"
      "  --loop-threads N  sharded epoll event loops; connections are\n"
      "                 spread round-robin across them (default 1)\n",
      argv0, argv0);
  return 2;
}

/// Strict integer operand parser: the whole string must be a base-10
/// integer. Returns false (caller prints usage, exit 2) otherwise.
bool ParseIntArg(const char* flag, const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*end != '\0') {
    std::fprintf(stderr, "error: %s expects an integer, got '%s'\n", flag,
                 text);
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseDoubleArg(const char* flag, const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (*end != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag,
                 text);
    return false;
  }
  *out = v;
  return true;
}

/// `--serve-bench N` implementation: N client threads, each issuing sync
/// Solves over all regimes of the problem, against one shared service.
/// Exercises the cache, single-flight coalescing, and the worker pool the
/// same way a long-lived scheduling daemon would be used.
int ServeBench(graph::ProblemSpec spec, const std::string& snapshot_source,
               int clients, int solver_threads) {
  constexpr int kRequestsPerClient = 64;
  auto problem =
      std::make_shared<const graph::ProblemSpec>(std::move(spec));

  service::ServiceOptions options;
  options.workers = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency() / 2));
  options.queue_capacity = static_cast<std::size_t>(clients) * 4 + 16;
  options.solver_threads = solver_threads;
  if (!snapshot_source.empty()) {
    options.snapshot_path =
        service::ScheduleCache::SnapshotPathFor(snapshot_source);
  }
  service::ScheduleService service(options);

  std::printf("serve-bench: %d clients x %d requests over %zu regime(s), "
              "%d workers\n",
              clients, kRequestsPerClient, problem->regime_count,
              options.workers);

  std::atomic<std::uint64_t> failures{0};
  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        service::SolveRequest request;
        request.problem = problem;
        request.regime = RegimeId(static_cast<int>(
            static_cast<std::size_t>(c + i) % problem->regime_count));
        auto result = service.Solve(request);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "request failed: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  service.Shutdown();  // also writes the snapshot, if configured

  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * kRequestsPerClient;
  std::printf("\n%llu requests in %.3f s  (%.0f req/s, %llu failed)\n\n",
              static_cast<unsigned long long>(total), seconds,
              seconds > 0 ? static_cast<double>(total) / seconds : 0.0,
              static_cast<unsigned long long>(failures.load()));
  std::printf("%s", service.Stats().ToTable().c_str());
  if (!options.snapshot_path.empty()) {
    std::printf("\nwarm cache snapshot: %s\n",
                options.snapshot_path.c_str());
  }
  return failures.load() == 0 ? 0 : 1;
}

/// `ssched verify` implementation: load a problem spec and a cache
/// snapshot, then run every stored artifact through the independent static
/// verifier (src/verify). Exit 0 only when every artifact verifies with no
/// errors. The snapshot's fingerprint keys are one-way, so the spec an
/// entry was solved for cannot be recovered from the key — each entry is
/// checked against the given problem, using its stored regime unless
/// --regime overrides it.
int VerifyCommand(int argc, char** argv) {
  std::vector<std::string> paths;
  int regime_override = -1;
  int capacity = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--regime") {
      if (!ParseIntArg("--regime", next(), &regime_override) ||
          regime_override < 0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--capacity") {
      if (!ParseIntArg("--capacity", next(), &capacity) || capacity < 0) {
        std::fprintf(stderr,
                     "error: --capacity expects a bound >= 0 (0 = none)\n");
        return Usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "error: verify needs a problem file and a snapshot\n");
    return Usage(argv[0]);
  }

  auto loaded = graph::LoadProblemFile(paths[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const graph::ProblemSpec spec = std::move(*loaded);

  service::ScheduleCache cache(/*capacity=*/1 << 20);
  Status snapshot = cache.Load(paths[1]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n", snapshot.ToString().c_str());
    return 1;
  }
  const auto entries = cache.Entries();
  std::printf("%s: %zu artifact(s)\n", paths[1].c_str(), entries.size());

  verify::VerifyOptions vopts;
  vopts.uniform_channel_capacity = static_cast<std::size_t>(capacity);
  std::size_t failed = 0;
  for (const auto& entry : entries) {
    const RegimeId regime =
        regime_override >= 0 ? RegimeId(regime_override) : entry->regime;
    std::printf("\nartifact %s  regime %d  latency %s  II %s  rotation %d\n",
                entry->key.ToHex().c_str(), regime.value(),
                FormatTick(entry->schedule.iteration.Latency()).c_str(),
                FormatTick(entry->schedule.initiation_interval).c_str(),
                entry->schedule.rotation);
    if (!regime.valid() ||
        static_cast<std::size_t>(regime.index()) >= spec.regime_count) {
      std::printf("  ERROR: regime %d not in the problem's %zu regime(s) "
                  "(pre-v2 snapshot? pass --regime)\n",
                  regime.value(), spec.regime_count);
      ++failed;
      continue;
    }
    verify::ScheduleVerifier verifier(spec, regime, vopts);
    verify::VerifyReport report = verifier.VerifyArtifact(
        entry->schedule, entry->min_latency, &entry->occupancy);
    if (report.clean()) {
      std::printf("  verified clean\n");
    } else {
      std::printf("%s", report.ToTable().c_str());
    }
    if (!report.ok()) ++failed;
  }
  if (failed > 0) {
    std::printf("\n%zu of %zu artifact(s) FAILED verification\n", failed,
                entries.size());
    return 1;
  }
  std::printf("\nall %zu artifact(s) verified\n", entries.size());
  return 0;
}

/// Parses "[host:]port" strictly. A bare port listens on 127.0.0.1.
bool ParseListenAddr(const std::string& text, std::string* host, int* port) {
  const std::size_t colon = text.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    *host = "127.0.0.1";
    port_text = text;
  } else {
    *host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (host->empty()) *host = "127.0.0.1";
  }
  char* end = nullptr;
  const long p = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || *end != '\0' || p < 0 || p > 65535) {
    std::fprintf(stderr, "error: bad port in address '%s'\n", text.c_str());
    return false;
  }
  *port = static_cast<int>(p);
  return true;
}

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

/// `--serve` implementation: the full multi-tenant scheduling daemon —
/// ScheduleService (solver pool + cache) behind a TenantScheduler
/// (admission + weighted fair queueing) behind the epoll TCP server
/// (docs/net.md). Runs until SIGINT/SIGTERM, then drains gracefully.
int ServeCommand(const std::string& host, int port,
                 const std::string& tenants_file, int max_tenants,
                 int workers, int solver_threads,
                 const std::string& snapshot_path, int max_pending_solves,
                 int max_inflight, int loop_threads) {
  service::ServiceOptions sopts;
  sopts.workers =
      workers > 0 ? workers
                  : static_cast<int>(std::max(
                        2u, std::thread::hardware_concurrency() / 2));
  sopts.queue_capacity = 256;
  sopts.solver_threads = solver_threads;
  sopts.snapshot_path = snapshot_path;
  service::ScheduleService service(sopts);

  tenant::TenantSchedulerOptions topts;
  topts.registry.max_tenants = static_cast<std::size_t>(max_tenants);
  topts.dispatch_threads = sopts.workers;
  tenant::TenantScheduler tenants(&service, topts);
  if (!tenants_file.empty()) {
    auto configs = tenant::LoadTenantConfigFile(tenants_file);
    if (!configs.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   configs.status().ToString().c_str());
      return 1;
    }
    for (auto& config : *configs) {
      const std::string name = config.name;
      Status registered = tenants.RegisterTenant(std::move(config));
      if (!registered.ok()) {
        std::fprintf(stderr, "error: tenant '%s': %s\n", name.c_str(),
                     registered.ToString().c_str());
        return 1;
      }
    }
    std::printf("loaded %zu tenant(s) from %s\n", tenants.tenant_count(),
                tenants_file.c_str());
  }

  net::ServerOptions nopts;
  nopts.host = host;
  nopts.port = port;
  nopts.max_pending_solves = static_cast<std::size_t>(max_pending_solves);
  nopts.max_inflight_per_conn = max_inflight;
  nopts.loop_threads = loop_threads;
  net::Server server(nopts, &service, &tenants);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ssched serving on %s:%d  (%d workers, max %d tenants)\n",
              host.c_str(), server.port(), sopts.workers, max_tenants);
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("\ndraining...\n");
  server.Stop();
  tenants.Shutdown();
  service.Shutdown();  // also writes the snapshot, if configured
  const net::ServerStats ns = server.Stats();
  std::printf("served %llu frame(s) over %llu connection(s), "
              "%llu protocol error(s)\n\n",
              static_cast<unsigned long long>(ns.frames_received),
              static_cast<unsigned long long>(ns.accepted),
              static_cast<unsigned long long>(ns.protocol_errors));
  std::printf("%s", service.Stats().ToTable().c_str());
  return 0;
}

/// `ssched stats <host:port>`: one stats request against a running server,
/// rendered as the same table the server-side ToTable produces.
int StatsCommand(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "error: stats needs a server address, e.g. "
                         "ssched stats 127.0.0.1:7077\n");
    return 2;
  }
  std::string host;
  int port = 0;
  if (!ParseListenAddr(argv[1], &host, &port) || port == 0) {
    return 2;
  }
  net::ClientOptions copts;
  copts.io_timeout = ticks::FromSeconds(5);
  net::Client client(copts);
  Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  auto stats = client.Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", stats->ToTable().c_str());
  return 0;
}

graph::ProblemSpec DemoProblem() {
  graph::ProblemSpec spec;
  tracker::TrackerGraph tg = tracker::BuildTrackerGraph();
  regime::RegimeSpace space(1, 8);
  spec.costs = tracker::PaperCostModel(tg, space);
  spec.graph = std::move(tg.graph);
  spec.machine = graph::MachineConfig::SingleNode(4);
  spec.regime_count = space.size();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
    return VerifyCommand(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "stats") == 0) {
    return StatsCommand(argc - 1, argv + 1);
  }
  std::string path;
  bool demo = false;
  bool heuristic = false;
  bool dot = false;
  bool allow_rotation = true;
  bool serve = false;
  int regime_index = 0;
  int frames_arg = 6;
  int serve_bench = 0;
  int solver_threads = 1;
  std::string solver_pruning = "full";
  int max_tenants = 64;
  int workers = 0;
  int max_pending_solves = 256;
  int max_inflight = 64;
  int loop_threads = 1;
  double gantt_ms = 0;
  std::string throughput_bound;
  std::string listen = "127.0.0.1:7077";
  std::string tenants_file;
  std::string snapshot_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--heuristic") {
      heuristic = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--no-rotation") {
      allow_rotation = false;
    } else if (arg == "--regime") {
      if (!ParseIntArg("--regime", next(), &regime_index)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--frames") {
      if (!ParseIntArg("--frames", next(), &frames_arg) || frames_arg < 0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "error: --listen expects [host:]port\n");
        return Usage(argv[0]);
      }
      listen = v;
    } else if (arg == "--tenants") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "error: --tenants expects a config file\n");
        return Usage(argv[0]);
      }
      tenants_file = v;
    } else if (arg == "--max-tenants") {
      if (!ParseIntArg("--max-tenants", next(), &max_tenants) ||
          max_tenants <= 0) {
        std::fprintf(stderr,
                     "error: --max-tenants expects a positive count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--workers") {
      if (!ParseIntArg("--workers", next(), &workers) || workers <= 0) {
        std::fprintf(stderr, "error: --workers expects a positive count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--max-pending-solves") {
      if (!ParseIntArg("--max-pending-solves", next(),
                       &max_pending_solves) ||
          max_pending_solves < 0) {
        std::fprintf(stderr,
                     "error: --max-pending-solves expects a bound >= 0 "
                     "(0 = unbounded)\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--max-inflight") {
      if (!ParseIntArg("--max-inflight", next(), &max_inflight) ||
          max_inflight < 0) {
        std::fprintf(stderr,
                     "error: --max-inflight expects a bound >= 0 "
                     "(0 = unbounded)\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--loop-threads") {
      if (!ParseIntArg("--loop-threads", next(), &loop_threads) ||
          loop_threads < 1) {
        std::fprintf(stderr,
                     "error: --loop-threads expects a positive count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "error: --snapshot expects a file path\n");
        return Usage(argv[0]);
      }
      snapshot_path = v;
    } else if (arg == "--serve-bench") {
      if (!ParseIntArg("--serve-bench", next(), &serve_bench) ||
          serve_bench <= 0) {
        std::fprintf(stderr,
                     "error: --serve-bench expects a positive count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--solver-threads") {
      if (!ParseIntArg("--solver-threads", next(), &solver_threads) ||
          solver_threads < 0) {
        std::fprintf(stderr,
                     "error: --solver-threads expects a count >= 0\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--solver-pruning") {
      const char* value = next();
      if (value == nullptr) {
        std::fprintf(stderr, "error: --solver-pruning expects a level\n");
        return Usage(argv[0]);
      }
      solver_pruning = value;
      if (solver_pruning != "full" && solver_pruning != "basic" &&
          solver_pruning != "none") {
        std::fprintf(stderr,
                     "error: --solver-pruning expects full, basic or none "
                     "(got %s)\n",
                     solver_pruning.c_str());
        return Usage(argv[0]);
      }
    } else if (arg == "--gantt-ms") {
      if (!ParseDoubleArg("--gantt-ms", next(), &gantt_ms)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--throughput-bound") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      throughput_bound = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else if (!path.empty()) {
      std::fprintf(stderr, "error: more than one input file ('%s', '%s')\n",
                   path.c_str(), arg.c_str());
      return Usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (serve) {
    if (demo || !path.empty() || serve_bench > 0) {
      std::fprintf(stderr,
                   "error: --serve takes no input file, --demo, or "
                   "--serve-bench\n");
      return Usage(argv[0]);
    }
    std::string host;
    int port = 0;
    if (!ParseListenAddr(listen, &host, &port)) return Usage(argv[0]);
    return ServeCommand(host, port, tenants_file, max_tenants, workers,
                        solver_threads, snapshot_path, max_pending_solves,
                        max_inflight, loop_threads);
  }
  if (!demo && path.empty()) return Usage(argv[0]);
  const std::size_t frames = static_cast<std::size_t>(frames_arg);

  graph::ProblemSpec spec;
  if (demo) {
    spec = DemoProblem();
    if (regime_index == 0) regime_index = 7;  // 8 models
  } else {
    auto loaded = graph::LoadProblemFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    spec = std::move(*loaded);
  }
  if (serve_bench > 0) {
    return ServeBench(std::move(spec), path, serve_bench, solver_threads);
  }
  if (regime_index < 0 ||
      static_cast<std::size_t>(regime_index) >= spec.regime_count) {
    std::fprintf(stderr, "error: regime %d out of range (0..%zu)\n",
                 regime_index, spec.regime_count - 1);
    return 1;
  }
  const RegimeId regime(regime_index);

  std::printf("problem: %zu tasks, %zu channels, %zu regime(s), %s\n\n",
              spec.graph.task_count(), spec.graph.channel_count(),
              spec.regime_count, spec.machine.ToString().c_str());
  std::printf("%s\n", spec.graph.ToText().c_str());
  if (dot) std::printf("%s\n", spec.graph.ToDot().c_str());

  sched::PipelinedSchedule schedule;
  if (heuristic) {
    sched::ListScheduler list(spec.comm, spec.machine);
    auto iter = list.ScheduleBestVariant(spec.graph, spec.costs, regime);
    if (!iter.ok()) {
      std::fprintf(stderr, "error: %s\n", iter.status().ToString().c_str());
      return 1;
    }
    sched::PipelineOptions popts;
    popts.allow_rotation = allow_rotation;
    schedule = sched::PipelineComposer::Compose(
        *iter, spec.machine.total_procs(), popts);
    std::printf("list-scheduler result (heuristic, not optimal):\n");
  } else {
    sched::OptimalScheduler scheduler(spec.graph, spec.costs, spec.comm,
                                      spec.machine);
    sched::OptimalOptions opts;
    opts.pipeline.allow_rotation = allow_rotation;
    opts.solver_threads = solver_threads;
    if (solver_pruning != "full") {
      opts.pruning.empty_node_symmetry = false;
      opts.pruning.sink_dominance = false;
      opts.pruning.memo = false;
      opts.pruning.seed_incumbent = false;
      if (solver_pruning == "none") {
        opts.pruning.proc_symmetry = false;
        opts.pruning.ready_symmetry = false;
      }
    }
    Stopwatch sw;
    Expected<sched::OptimalResult> result = [&] {
      if (throughput_bound.empty()) return scheduler.Schedule(regime, opts);
      auto bound = graph::ParseTickValue(throughput_bound);
      if (!bound.ok()) return Expected<sched::OptimalResult>(bound.status());
      std::printf("throughput mode: maximizing throughput with latency <= "
                  "%s\n", FormatTick(*bound).c_str());
      return scheduler.ScheduleForThroughput(regime, *bound, opts);
    }();
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("optimal schedule (regime %d): searched %llu nodes over "
                "%llu variant combos in %.1f ms%s\n",
                regime_index,
                static_cast<unsigned long long>(result->nodes_explored),
                static_cast<unsigned long long>(
                    result->variant_combinations),
                1e3 * sw.ElapsedSeconds(),
                result->budget_exhausted ? "  [budget exhausted]" : "");
    std::printf("latency-optimal schedules: %zu\n", result->optimal.size());
    schedule = std::move(result->best);
  }

  graph::OpGraph og = graph::OpGraph::Expand(
      spec.graph, spec.costs, regime, schedule.iteration.variants());
  std::printf("\n%s\n", schedule.iteration.ToString(og).c_str());
  std::printf("pipelined: %s\n\n", schedule.ToString().c_str());

  auto occupancy = sched::AnalyzeOccupancy(spec.graph, og, schedule);
  std::printf("channel occupancy (max live items): ");
  for (std::size_t c = 0; c < occupancy.channels.size(); ++c) {
    if (c) std::printf(", ");
    std::printf("%s=%zu", occupancy.channels[c].name.c_str(),
                occupancy.channels[c].max_items);
  }
  std::printf("  (required capacity %zu)\n\n",
              occupancy.required_capacity);

  sim::ScheduleRunOptions run;
  run.frames = frames;
  auto replay = sim::RunSchedule(schedule, og, run);
  sim::GanttOptions gantt;
  gantt.row_ticks =
      gantt_ms > 0
          ? ticks::FromMillis(gantt_ms)
          : std::max<Tick>(1, schedule.iteration.Latency() / 24);
  gantt.max_rows = 60;
  std::printf("%s\n",
              RenderGantt(replay.trace, spec.machine.total_procs(), gantt)
                  .c_str());
  std::printf("replay: %s\n", replay.metrics.ToString().c_str());
  return 0;
}
