#!/usr/bin/env python3
"""Unit tests for the bench_compare direction rules.

bench_compare has no .py extension (it is installed as a command), so the
module is loaded by path with SourceFileLoader. Run directly or via ctest
(registered in tools/CMakeLists.txt when a python3 interpreter is found).
"""
import importlib.machinery
import importlib.util
import json
import os
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_LOADER = importlib.machinery.SourceFileLoader(
    "bench_compare", os.path.join(_HERE, "bench_compare"))
_SPEC = importlib.util.spec_from_loader("bench_compare", _LOADER)
bench_compare = importlib.util.module_from_spec(_SPEC)
_LOADER.exec_module(bench_compare)


def _write(dirname: str, filename: str, records: dict) -> str:
    path = os.path.join(dirname, filename)
    with open(path, "w") as f:
        json.dump([{"name": n, "median_ms": v, "p95_ms": v}
                   for n, v in records.items()], f)
    return path


class CompareTest(unittest.TestCase):
    def compare(self, base: dict, cur: dict, threshold: float = 25.0) -> list:
        with tempfile.TemporaryDirectory() as d:
            return bench_compare.compare(
                _write(d, "base.json", base), _write(d, "cur.json", cur),
                threshold)

    def test_timing_regression_is_flagged(self):
        failed = self.compare({"optimal_medium_t4": 10.0},
                              {"optimal_medium_t4": 20.0})
        self.assertEqual(failed, ["optimal_medium_t4"])

    def test_timing_improvement_passes(self):
        self.assertEqual(
            self.compare({"optimal_medium_t4": 20.0},
                         {"optimal_medium_t4": 10.0}), [])

    def test_speedup_gain_is_not_a_regression(self):
        # Higher is better for _x records: doubling the speedup must pass.
        self.assertEqual(
            self.compare({"optimal_medium_speedup_4t_x": 1.0},
                         {"optimal_medium_speedup_4t_x": 2.0}), [])

    def test_speedup_drop_is_flagged(self):
        failed = self.compare({"optimal_medium_speedup_4t_x": 2.0},
                              {"optimal_medium_speedup_4t_x": 1.0})
        self.assertEqual(failed, ["optimal_medium_speedup_4t_x"])

    def test_count_records_never_gate(self):
        # Counters drift whenever pruning improves; huge swings in either
        # direction are informational only.
        self.assertEqual(
            self.compare({"optimal_large_steals_count": 1000.0,
                          "optimal_large_nodes_pruned_memo_count": 5.0},
                         {"optimal_large_steals_count": 1.0,
                          "optimal_large_nodes_pruned_memo_count": 9999.0}),
            [])

    def test_unshared_records_are_ignored(self):
        self.assertEqual(
            self.compare({"old_only_t1": 10.0}, {"new_only_t1": 10.0}), [])

    def test_within_threshold_passes(self):
        self.assertEqual(
            self.compare({"optimal_small_t1": 10.0},
                         {"optimal_small_t1": 12.0}), [])

    def test_direction_helpers(self):
        self.assertTrue(
            bench_compare.higher_is_better("optimal_medium_speedup_4t_x"))
        self.assertFalse(bench_compare.higher_is_better("optimal_medium_t4"))
        self.assertTrue(
            bench_compare.informational("optimal_large_steals_count"))
        self.assertFalse(
            bench_compare.informational("optimal_large_t8"))


if __name__ == "__main__":
    unittest.main()
